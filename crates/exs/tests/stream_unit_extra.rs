//! Additional socket-level edge-case tests: BCopy staging lifecycle,
//! WAITALL interaction with dynamic mode switches, zero-copy contract
//! sanity, and statistics accounting.

use exs::{ExsConfig, ExsEvent, ProtocolMode, StreamSocket, WwiMode};
use rdma_verbs::profiles::ideal;
use rdma_verbs::{Access, NodeApi, NodeApp, SimNet};
use simnet::SimTime;

struct Pump<'s> {
    sock: &'s mut StreamSocket,
    events: Vec<ExsEvent>,
    until_sends: usize,
    until_recv_bytes: u64,
    got_bytes: u64,
    got_sends: usize,
}

impl NodeApp for Pump<'_> {
    fn on_start(&mut self, _api: &mut NodeApi<'_>) {}
    fn on_wake(&mut self, api: &mut NodeApi<'_>) {
        self.sock.handle_wake(api);
        for ev in self.sock.take_events() {
            match ev {
                ExsEvent::SendComplete { .. } => self.got_sends += 1,
                ExsEvent::RecvComplete { len, .. } => self.got_bytes += len as u64,
                _ => {}
            }
            self.events.push(ev);
        }
    }
    fn is_done(&self) -> bool {
        self.got_sends >= self.until_sends && self.got_bytes >= self.until_recv_bytes
    }
}

fn two_nodes(net: &mut SimNet) -> (rdma_verbs::NodeId, rdma_verbs::NodeId) {
    let profile = ideal();
    let a = net.add_node(profile.host.clone(), profile.hca.clone());
    let b = net.add_node(profile.host.clone(), profile.hca.clone());
    net.connect_nodes(a, b, profile.link.clone(), 30);
    (a, b)
}

#[test]
fn bcopy_staging_regions_are_freed() {
    let mut net = SimNet::new();
    let (a, b) = two_nodes(&mut net);
    let (mut sa, mut sb) =
        StreamSocket::pair(&mut net, a, b, &ExsConfig::with_mode(ProtocolMode::BCopy));

    let (user_mr, initial_regions) = net.with_api(a, |api| {
        let mr = api.register_mr(4096, Access::NONE);
        (mr, api.hca().mem().len())
    });
    let recv_mr = net.with_api(b, |api| api.register_mr(4096, Access::local_remote_write()));

    // Three sends, each staging a copy.
    net.with_api(a, |api| {
        for i in 0..3 {
            sa.exs_send(api, &user_mr, 0, 1000, i);
        }
        assert_eq!(
            api.hca().mem().len(),
            initial_regions + 3,
            "three staging regions live"
        );
    });
    net.with_api(b, |api| {
        for i in 0..3 {
            sb.exs_recv(api, &recv_mr, 0, 1000, true, i);
        }
    });

    let mut pa = Pump {
        sock: &mut sa,
        events: Vec::new(),
        until_sends: 3,
        until_recv_bytes: 0,
        got_bytes: 0,
        got_sends: 0,
    };
    let mut pb = Pump {
        sock: &mut sb,
        events: Vec::new(),
        until_sends: 0,
        until_recv_bytes: 3000,
        got_bytes: 0,
        got_sends: 0,
    };
    let outcome = net.run(&mut [&mut pa, &mut pb], SimTime::from_secs(1));
    assert!(outcome.completed);

    net.with_api(a, |api| {
        assert_eq!(
            api.hca().mem().len(),
            initial_regions,
            "staging regions must be deregistered after completion"
        );
    });
}

#[test]
fn bcopy_user_buffer_content_is_snapshotted() {
    // The whole point of BCopy: the user buffer may be reused right
    // after exs_send returns, because the library copied it.
    let mut net = SimNet::new();
    let (a, b) = two_nodes(&mut net);
    let (mut sa, mut sb) =
        StreamSocket::pair(&mut net, a, b, &ExsConfig::with_mode(ProtocolMode::BCopy));
    let user_mr = net.with_api(a, |api| api.register_mr(64, Access::NONE));
    let recv_mr = net.with_api(b, |api| api.register_mr(64, Access::local_remote_write()));

    net.with_api(a, |api| {
        api.write_mr(user_mr.key, user_mr.addr, b"first!").unwrap();
        sa.exs_send(api, &user_mr, 0, 6, 1);
        // Clobber immediately — the staged copy must survive.
        api.write_mr(user_mr.key, user_mr.addr, b"XXXXXX").unwrap();
    });
    net.with_api(b, |api| {
        sb.exs_recv(api, &recv_mr, 0, 6, true, 1);
    });
    let mut pa = Pump {
        sock: &mut sa,
        events: Vec::new(),
        until_sends: 1,
        until_recv_bytes: 0,
        got_bytes: 0,
        got_sends: 0,
    };
    let mut pb = Pump {
        sock: &mut sb,
        events: Vec::new(),
        until_sends: 0,
        until_recv_bytes: 6,
        got_bytes: 0,
        got_sends: 0,
    };
    assert!(
        net.run(&mut [&mut pa, &mut pb], SimTime::from_secs(1))
            .completed
    );
    net.with_api(b, |api| {
        let mut buf = [0u8; 6];
        api.read_mr(recv_mr.key, recv_mr.addr, &mut buf).unwrap();
        assert_eq!(&buf, b"first!", "BCopy must snapshot the payload");
    });
}

#[test]
fn zero_copy_mode_reads_buffer_at_post_time() {
    // Contrast with BCopy: in the zero-copy modes the simulator gathers
    // the payload when the WQE is posted, which models the contract that
    // the buffer belongs to the HCA from post until completion.
    let mut net = SimNet::new();
    let (a, b) = two_nodes(&mut net);
    let (mut sa, mut sb) = StreamSocket::pair(
        &mut net,
        a,
        b,
        &ExsConfig::with_mode(ProtocolMode::IndirectOnly),
    );
    let user_mr = net.with_api(a, |api| api.register_mr(64, Access::NONE));
    let recv_mr = net.with_api(b, |api| api.register_mr(64, Access::local_remote_write()));
    net.with_api(a, |api| {
        api.write_mr(user_mr.key, user_mr.addr, b"posted").unwrap();
        sa.exs_send(api, &user_mr, 0, 6, 1);
    });
    net.with_api(b, |api| {
        sb.exs_recv(api, &recv_mr, 0, 6, true, 1);
    });
    let mut pa = Pump {
        sock: &mut sa,
        events: Vec::new(),
        until_sends: 1,
        until_recv_bytes: 0,
        got_bytes: 0,
        got_sends: 0,
    };
    let mut pb = Pump {
        sock: &mut sb,
        events: Vec::new(),
        until_sends: 0,
        until_recv_bytes: 6,
        got_bytes: 0,
        got_sends: 0,
    };
    assert!(
        net.run(&mut [&mut pa, &mut pb], SimTime::from_secs(1))
            .completed
    );
    net.with_api(b, |api| {
        let mut buf = [0u8; 6];
        api.read_mr(recv_mr.key, recv_mr.addr, &mut buf).unwrap();
        assert_eq!(&buf, b"posted");
    });
}

#[test]
fn stats_account_for_bytes_and_messages() {
    let mut net = SimNet::new();
    let (a, b) = two_nodes(&mut net);
    let (mut sa, mut sb) = StreamSocket::pair(
        &mut net,
        a,
        b,
        &ExsConfig {
            wwi_mode: WwiMode::Native,
            ..ExsConfig::with_mode(ProtocolMode::Dynamic)
        },
    );
    let user_mr = net.with_api(a, |api| api.register_mr(10_000, Access::NONE));
    let recv_mr = net.with_api(b, |api| {
        api.register_mr(10_000, Access::local_remote_write())
    });
    net.with_api(b, |api| {
        sb.exs_recv(api, &recv_mr, 0, 10_000, true, 1);
    });
    net.with_api(a, |api| {
        sa.exs_send(api, &user_mr, 0, 4_000, 1);
        sa.exs_send(api, &user_mr, 4_000, 6_000, 2);
    });
    let mut pa = Pump {
        sock: &mut sa,
        events: Vec::new(),
        until_sends: 2,
        until_recv_bytes: 0,
        got_bytes: 0,
        got_sends: 0,
    };
    let mut pb = Pump {
        sock: &mut sb,
        events: Vec::new(),
        until_sends: 0,
        until_recv_bytes: 10_000,
        got_bytes: 0,
        got_sends: 0,
    };
    assert!(
        net.run(&mut [&mut pa, &mut pb], SimTime::from_secs(1))
            .completed
    );

    let st = pa.sock.stats();
    assert_eq!(st.sends_completed, 2);
    assert_eq!(st.bytes_sent, 10_000);
    assert_eq!(st.direct_bytes + st.indirect_bytes, 10_000);
    let rt = pb.sock.stats();
    assert_eq!(rt.recvs_completed, 1);
    assert_eq!(rt.bytes_received, 10_000);
    // The WAITALL advert accepted both sends.
    assert_eq!(rt.adverts_sent, 1);
}
