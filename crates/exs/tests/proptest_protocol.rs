//! Property tests re-proving the paper's correctness results (§IV-A)
//! over randomized schedules.
//!
//! The sans-IO sender and receiver halves are coupled through two model
//! FIFO channels (data S→R, control R→S) — the ordering guarantee of a
//! reliable-connected QP — and driven by arbitrary interleavings of
//! sends, receives, deliveries and control arrivals. The checks:
//!
//! * **Lemma 1** — every emitted ADVERT carries a direct (even) phase.
//! * **Lemma 2** — ADVERT phases only change after an indirect transfer
//!   reaches the receiver.
//! * **Phase monotonicity** — both sides' phases never decrease
//!   (underpins proof cases b1/b2).
//! * **Theorem 1 (safety)** — every direct transfer lands in the
//!   receive buffer at the head of the receiver's queue (checked by the
//!   state machines' internal assertions), and the stream arrives **in
//!   order with no loss and no duplication**: after draining, the
//!   receiver's stream position equals the sender's, and the bytes
//!   delivered to completed receives form exactly the prefix sequence.
//!
//! The state machines carry `debug_assert`s for the per-step versions of
//! these invariants (advert sequence exactness at resynchronization,
//! Lemma 4 phase equality, no overfill); running under proptest explores
//! thousands of schedules against them.

use std::collections::VecDeque;

use proptest::prelude::*;

use exs::messages::Advert;
use exs::receiver::{LocalRing, ReceiverHalf, RecvAction, RecvOp};
use exs::sender::{RemoteRing, SenderHalf};
use exs::{ConnStats, DirectPolicy, ProtocolMode};

#[derive(Clone, Debug)]
enum Step {
    /// Queue `len` more bytes at the sender application.
    QueueSend { len: u16 },
    /// Let the sender plan (and "transmit") at most one WWI.
    SenderPump,
    /// Deliver the oldest in-flight data transfer to the receiver.
    DeliverData,
    /// Deliver the oldest in-flight control message to the sender.
    DeliverCtrl,
    /// Post a receive of `len` bytes (waitall flag).
    PostRecv { len: u16, waitall: bool },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        2 => (1..4096u16).prop_map(|len| Step::QueueSend { len }),
        3 => Just(Step::SenderPump),
        3 => Just(Step::DeliverData),
        3 => Just(Step::DeliverCtrl),
        2 => (1..4096u16, any::<bool>()).prop_map(|(len, waitall)| Step::PostRecv { len, waitall }),
    ]
}

/// Random `ExsConfig::direct` knobs, including the disabled policy
/// (`min_direct_size == 0`) and degenerate backlog/RTT bounds.
fn policy_strategy() -> impl Strategy<Value = DirectPolicy> {
    (any::<bool>(), 1..4096u64, 0..=RING_CAP, 0..5u32).prop_map(|(enabled, min, backlog, rtts)| {
        DirectPolicy {
            min_direct_size: if enabled { min } else { 0 },
            resync_backlog: backlog,
            max_resync_rtts: rtts,
        }
    })
}

#[derive(Clone, Copy, Debug)]
struct DataMsg {
    indirect: bool,
    len: u32,
}

struct Model {
    sender: SenderHalf,
    receiver: ReceiverHalf,
    stats_s: ConnStats,
    stats_r: ConnStats,
    data_channel: VecDeque<DataMsg>,
    ctrl_channel: VecDeque<CtrlModel>,
    pending_send_bytes: u64,
    queued_recvs: u64,
    next_recv_id: u64,
    next_recv_addr: u64,
    completed: Vec<(u64, u32)>,
    // Lemma 2 bookkeeping: phase of the last advert seen, and whether an
    // indirect transfer has reached the receiver since.
    last_advert_phase: Option<exs::Phase>,
    indirect_since_last_advert: bool,
    max_phase_seen_r: exs::Phase,
    max_phase_seen_s: exs::Phase,
}

enum CtrlModel {
    Advert(Advert),
    Ack(u64),
}

const RING_CAP: u64 = 8192;
const USER_BASE: u64 = 0x100_0000;

impl Model {
    fn new() -> Model {
        Model::with_policy(DirectPolicy::default())
    }

    fn with_policy(policy: DirectPolicy) -> Model {
        let sender = SenderHalf::with_policy(
            ProtocolMode::Dynamic,
            RemoteRing {
                addr: 0x1000,
                rkey: 1,
                capacity: RING_CAP,
            },
            1 << 20,
            policy,
        );
        let receiver = ReceiverHalf::new(
            ProtocolMode::Dynamic,
            LocalRing {
                addr: 0x1000,
                key: 1,
                capacity: RING_CAP,
            },
            RING_CAP / 4,
        );
        Model {
            sender,
            receiver,
            stats_s: ConnStats::default(),
            stats_r: ConnStats::default(),
            data_channel: VecDeque::new(),
            ctrl_channel: VecDeque::new(),
            pending_send_bytes: 0,
            queued_recvs: 0,
            next_recv_id: 0,
            next_recv_addr: USER_BASE,
            completed: Vec::new(),
            last_advert_phase: None,
            indirect_since_last_advert: false,
            max_phase_seen_r: exs::Phase::ZERO,
            max_phase_seen_s: exs::Phase::ZERO,
        }
    }

    fn run_actions(&mut self, actions: Vec<RecvAction>) {
        for a in actions {
            match a {
                RecvAction::SendAdvert(ad) => {
                    // Lemma 1: ADVERT phases are always direct.
                    assert!(
                        ad.phase.is_direct(),
                        "Lemma 1 violated: advert with phase {}",
                        ad.phase
                    );
                    // Lemma 2: the advert phase may only differ from the
                    // previous advert's if an indirect transfer arrived
                    // in between.
                    if let Some(prev) = self.last_advert_phase {
                        if ad.phase != prev {
                            assert!(
                                self.indirect_since_last_advert,
                                "Lemma 2 violated: advert phase changed {prev} -> {} \
                                 without an indirect transfer",
                                ad.phase
                            );
                        }
                    }
                    self.last_advert_phase = Some(ad.phase);
                    self.indirect_since_last_advert = false;
                    self.ctrl_channel.push_back(CtrlModel::Advert(ad));
                }
                RecvAction::SendAck { freed } => {
                    self.ctrl_channel.push_back(CtrlModel::Ack(freed));
                }
                RecvAction::Copy { .. } => {
                    // Byte movement is validated end-to-end in the
                    // SimNet tests; here only accounting is modelled.
                }
                RecvAction::Complete { id, len } => {
                    self.completed.push((id, len));
                    self.queued_recvs -= 1;
                }
            }
        }
        // Phase monotonicity at the receiver.
        assert!(
            self.receiver.phase() >= self.max_phase_seen_r,
            "receiver phase went backwards"
        );
        self.max_phase_seen_r = self.receiver.phase();
    }

    fn apply(&mut self, step: &Step) {
        match *step {
            Step::QueueSend { len } => {
                self.pending_send_bytes += len as u64;
            }
            Step::SenderPump => {
                if self.pending_send_bytes > 0 {
                    if let Some(plan) = self
                        .sender
                        .plan_transfer(self.pending_send_bytes, &mut self.stats_s)
                    {
                        self.pending_send_bytes -= plan.len as u64;
                        self.data_channel.push_back(DataMsg {
                            indirect: plan.indirect,
                            len: plan.len,
                        });
                    }
                }
                assert!(
                    self.sender.phase() >= self.max_phase_seen_s,
                    "sender phase went backwards"
                );
                self.max_phase_seen_s = self.sender.phase();
            }
            Step::DeliverData => {
                if let Some(msg) = self.data_channel.pop_front() {
                    let mut actions = Vec::new();
                    if msg.indirect {
                        self.indirect_since_last_advert = true;
                        self.receiver
                            .on_indirect(msg.len, &mut self.stats_r, &mut actions)
                            .unwrap();
                    } else {
                        self.receiver
                            .on_direct(msg.len, &mut self.stats_r, &mut actions)
                            .unwrap();
                    }
                    self.run_actions(actions);
                }
            }
            Step::DeliverCtrl => {
                if let Some(ctrl) = self.ctrl_channel.pop_front() {
                    match ctrl {
                        CtrlModel::Advert(ad) => {
                            self.sender.push_advert(ad, &mut self.stats_s).unwrap()
                        }
                        CtrlModel::Ack(freed) => {
                            self.sender.on_ack(freed, &mut self.stats_s).unwrap()
                        }
                    }
                }
            }
            Step::PostRecv { len, waitall } => {
                let op = RecvOp {
                    id: self.next_recv_id,
                    addr: self.next_recv_addr,
                    len: len as u32,
                    key: 2,
                    waitall,
                };
                self.next_recv_id += 1;
                self.next_recv_addr += len as u64 + 64;
                self.queued_recvs += 1;
                let mut actions = Vec::new();
                self.receiver.push_recv(op, &mut self.stats_r, &mut actions);
                self.run_actions(actions);
            }
        }
    }

    /// Drives the model to quiescence: all queued bytes delivered.
    fn drain(&mut self) {
        let mut idle_rounds = 0;
        while idle_rounds < 4 {
            let before = (
                self.pending_send_bytes,
                self.data_channel.len(),
                self.ctrl_channel.len(),
                self.receiver.seq(),
                self.sender.seq(),
            );
            // Keep a generous supply of receives so every byte can land.
            if self.queued_recvs < 2 {
                self.apply(&Step::PostRecv {
                    len: 2048,
                    waitall: false,
                });
            }
            self.apply(&Step::DeliverData);
            self.apply(&Step::DeliverCtrl);
            self.apply(&Step::SenderPump);
            let after = (
                self.pending_send_bytes,
                self.data_channel.len(),
                self.ctrl_channel.len(),
                self.receiver.seq(),
                self.sender.seq(),
            );
            if before == after {
                idle_rounds += 1;
            } else {
                idle_rounds = 0;
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_schedules_deliver_in_order(steps in proptest::collection::vec(step_strategy(), 1..120)) {
        let mut m = Model::new();
        for step in &steps {
            m.apply(step);
        }
        m.drain();

        // Theorem 1: no loss, no duplication, in order. Every byte the
        // sender put on the stream reached the receiver's position
        // counter exactly once (the state machines' internal assertions
        // verify head-of-queue identity per transfer).
        prop_assert_eq!(m.sender.seq(), m.receiver.seq(), "stream positions diverged");
        prop_assert_eq!(m.pending_send_bytes, 0, "sender failed to drain");
        prop_assert!(m.data_channel.is_empty());

        // Completion accounting: delivered bytes equal the stream length
        // minus whatever is still sitting in the intermediate buffer or
        // partially filling a WAITALL receive (drain posts plain recvs,
        // so only the final partial WAITALL can retain bytes).
        let delivered: u64 = m.completed.iter().map(|&(_, len)| len as u64).sum();
        prop_assert!(delivered <= m.sender.seq().0);

        // Completions are delivered in receive-post order.
        let mut ids: Vec<u64> = m.completed.iter().map(|&(id, _)| id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&mut ids, &mut sorted, "receives completed out of order");
    }

    /// The adaptive re-entry policy (`ExsConfig::direct`) only ever
    /// *delays* a send — under arbitrary policy knobs, pre-post depths
    /// and advert/ack timing it must never reorder, drop or duplicate
    /// bytes, and a paused sender must always drain to quiescence
    /// (advert accept or backlog-drained give-up, never a deadlock).
    #[test]
    fn resync_policy_never_reorders_or_drops(
        policy in policy_strategy(),
        prepost in 1..6usize,
        steps in proptest::collection::vec(step_strategy(), 1..160),
    ) {
        let mut m = Model::with_policy(policy);
        // Pre-post a queue of receives before any data moves — the
        // reactor's pre-posted advert queue, at a random depth.
        for _ in 0..prepost {
            m.apply(&Step::PostRecv { len: 2048, waitall: false });
        }
        for step in &steps {
            m.apply(step);
        }
        m.drain();

        // Theorem 1 still holds with pausing in the schedule: no loss,
        // no duplication, in order.
        prop_assert_eq!(m.sender.seq(), m.receiver.seq(), "stream positions diverged");
        prop_assert_eq!(m.pending_send_bytes, 0, "paused sender failed to drain");
        prop_assert!(m.data_channel.is_empty());
        prop_assert!(
            !m.sender.waiting_resync(),
            "sender still parked after quiescence"
        );

        let delivered: u64 = m.completed.iter().map(|&(_, len)| len as u64).sum();
        prop_assert!(delivered <= m.sender.seq().0);
        let mut ids: Vec<u64> = m.completed.iter().map(|&(id, _)| id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&mut ids, &mut sorted, "receives completed out of order");

        // Telemetry bookkeeping: completions never exceed attempts, and
        // a disabled policy records neither.
        prop_assert!(m.stats_s.resyncs_completed <= m.stats_s.resyncs_attempted);
        if !policy.enabled() {
            prop_assert_eq!(m.stats_s.resyncs_attempted, 0);
        }
    }

    #[test]
    fn sender_never_accepts_stale_advert(
        steps in proptest::collection::vec(step_strategy(), 1..200)
    ) {
        // The Fig. 6/8 scenarios: run random schedules and rely on the
        // debug assertions inside plan_transfer / on_direct, which check
        // the exact-sequence and phase-equality conditions of the proof
        // every time an advert is accepted. Any stale acceptance panics.
        let mut m = Model::new();
        for step in &steps {
            m.apply(step);
        }
        // No drain: mid-flight states must also be safe.
        prop_assert!(m.receiver.seq() <= m.sender.seq());
    }

    #[test]
    fn estimates_exact_at_resync(
        lens in proptest::collection::vec(1..2000u32, 1..40),
        recv_lens in proptest::collection::vec(1..3000u32, 1..40),
    ) {
        // Force an indirect episode, then drain completely, then check
        // the next advert's sequence number is exact (the resync
        // condition the paper's Fig. 7 fix establishes). The receiver's
        // internal debug_assert checks pending_estimate == 0; here we
        // check the advert itself.
        let mut m = Model::new();
        for &len in &lens {
            m.apply(&Step::QueueSend { len: len as u16 });
            m.apply(&Step::SenderPump); // no adverts yet -> indirect
        }
        for &rl in &recv_lens {
            m.apply(&Step::PostRecv { len: rl as u16, waitall: false });
        }
        m.drain();
        prop_assert_eq!(m.sender.seq(), m.receiver.seq());

        // Everything is quiescent: the next advert's sequence number is
        // the stream position plus the estimates of receives that are
        // still advertised-but-unconsumed (one each, non-WAITALL) — and
        // *exact* when none are outstanding, the resynchronization
        // condition the Fig. 7 fix establishes.
        let outstanding = m.receiver.queue_len() as u64 - m.receiver.unadvertised() as u64;
        let mut actions = Vec::new();
        let op = RecvOp { id: 999_999, addr: 0xFFFF_0000, len: 64, key: 2, waitall: false };
        m.receiver.push_recv(op, &mut m.stats_r, &mut actions);
        let advert = actions.iter().find_map(|a| match a {
            RecvAction::SendAdvert(ad) => Some(*ad),
            _ => None,
        });
        if let Some(ad) = advert {
            prop_assert_eq!(
                ad.seq,
                exs::Seq(m.receiver.seq().0 + outstanding),
                "advert estimate drifted from stream position + outstanding estimates"
            );
            prop_assert!(ad.phase.is_direct());
        }
    }
}

/// Deterministic regression: the exact Fig. 8 interleaving (an ADVERT
/// from a newer phase with a stale sequence number, followed by a
/// successor whose sequence happens to match) must not produce a direct
/// transfer into the wrong buffer.
#[test]
fn fig8_interleaving_is_rejected() {
    let mut m = Model::new();
    // Sender goes indirect with 100 bytes.
    m.apply(&Step::QueueSend { len: 100 });
    m.apply(&Step::SenderPump);
    assert!(m.sender.phase().is_indirect());

    // Receiver posts receives and drains, resyncing to phase 2 — but the
    // adverts it emitted while data was still in flight are stale.
    m.apply(&Step::PostRecv {
        len: 40,
        waitall: false,
    });
    // The advert (phase 0, seq 0) crosses with the indirect transfer.
    m.apply(&Step::DeliverCtrl); // sender sees stale advert
    m.apply(&Step::QueueSend { len: 50 });
    m.apply(&Step::SenderPump); // must discard it and go indirect again
    assert!(m.sender.phase().is_indirect());
    assert_eq!(m.stats_s.adverts_discarded, 1);
    assert_eq!(m.stats_s.direct_transfers, 0);

    m.drain();
    assert_eq!(m.sender.seq(), m.receiver.seq());
}
