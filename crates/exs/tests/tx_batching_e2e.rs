//! End-to-end tests for the batched transmit pipeline: doorbell
//! postlists, selective signaling, and small-send coalescing.
//!
//! Three properties are pinned down here:
//!
//! 1. a `signal_interval` far beyond the SQ depth never deadlocks the
//!    stream (the near-full forced signal keeps reclamation alive);
//! 2. batching + coalescing deliver a byte-identical stream while
//!    ringing strictly fewer doorbells than the unbatched pipeline;
//! 3. the simulated and the real-thread backend produce the same
//!    delivered-stream digest for the same coalesced+batched workload.

use std::time::Duration;

use blast::fan_in::{fnv1a, FNV_OFFSET};
use blast::{run_blast, BlastSpec, SizeDist, VerifyLevel};
use exs::threaded::ThreadStream;
use exs::{ExsConfig, ProtocolMode};
use rdma_verbs::{profiles, Access};

/// The blast workload's stream byte at offset `i` (must match
/// `blast::runner`'s pattern for the cross-backend digest comparison).
fn pattern(i: u64) -> u8 {
    (i % 251) as u8
}

/// A selective-signaling interval far beyond the SQ depth must not
/// deadlock: with (almost) every WQE unsignaled, slot reclamation
/// depends entirely on the forced signals at SQ-near-full and on
/// data-carrying flush boundaries. `run_blast` panics on a stalled
/// virtual clock, so completion is the assertion.
#[test]
fn huge_signal_interval_never_deadlocks() {
    for mode in [ProtocolMode::Dynamic, ProtocolMode::BCopy] {
        let report = run_blast(&BlastSpec {
            cfg: ExsConfig {
                sq_depth: 8,
                signal_interval: 1 << 20,
                ring_capacity: 64 << 10,
                credits: 32,
                ..ExsConfig::with_mode(mode)
            },
            outstanding_sends: 16,
            outstanding_recvs: 8,
            sizes: SizeDist::Fixed(512),
            messages: 200,
            verify: VerifyLevel::Full,
            seed: 11,
            ..BlastSpec::new(profiles::fdr_infiniband())
        });
        assert_eq!(report.bytes, 200 * 512, "mode {mode:?}");
        // The interval itself can never fire at depth 8; any signaled
        // WQE must come from a forced signal.
        assert!(
            report.sender.signaled_wqes > 0,
            "forced signals kept the SQ draining (mode {mode:?})"
        );
        assert!(
            report.sender.unsignaled_wqes > 0,
            "the huge interval should leave most WQEs unsignaled (mode {mode:?})"
        );
        assert!(!report.sender.cq_overflowed && !report.receiver.cq_overflowed);
    }
}

/// Batched + coalesced vs. unbatched (`tx_batch_limit = 1`): same
/// bytes, same digest, at least 2x fewer doorbells.
#[test]
fn batching_preserves_bytes_and_halves_doorbells() {
    let spec = |tx_batch_limit: usize| BlastSpec {
        cfg: ExsConfig {
            tx_batch_limit,
            sq_depth: 64,
            ring_capacity: 256 << 10,
            credits: 64,
            ..ExsConfig::with_mode(ProtocolMode::BCopy)
        },
        outstanding_sends: 8,
        outstanding_recvs: 8,
        sizes: SizeDist::Fixed(128),
        messages: 300,
        verify: VerifyLevel::Full,
        seed: 42,
        ..BlastSpec::new(profiles::fdr_infiniband())
    };
    let batched = run_blast(&spec(0));
    let unbatched = run_blast(&spec(1));

    assert_eq!(batched.bytes, 300 * 128);
    assert_eq!(batched.bytes, unbatched.bytes);
    assert_eq!(
        batched.digest, unbatched.digest,
        "batching must not change the delivered byte stream"
    );

    // The whole point: N WQEs per doorbell instead of one.
    assert!(
        batched.sender.doorbells * 2 <= unbatched.sender.doorbells,
        "batched {} doorbells should be at most half of unbatched {}",
        batched.sender.doorbells,
        unbatched.sender.doorbells,
    );
    assert!(batched.sender.mean_wqes_per_doorbell() > 1.0);
    assert!(batched.sender.max_wqes_per_doorbell > 1);

    // Coalescing: 128-byte messages under the 256-byte threshold share
    // staged WWIs.
    assert!(batched.sender.coalesced_msgs > 0);
    assert!(batched.sender.coalesced_bytes > 0);
    assert!(
        batched.sender.total_transfers() < unbatched.sender.total_transfers(),
        "coalesced runs should need fewer WWIs"
    );

    // Selective signaling: the unbatched pipeline signals everything.
    assert_eq!(unbatched.sender.unsignaled_wqes, 0);
    assert_eq!(unbatched.sender.coalesced_msgs, 0);
    assert!((unbatched.sender.mean_wqes_per_doorbell() - 1.0).abs() < 1e-9);
    assert!(batched.sender.unsignaled_ratio() > 0.0);

    assert!(!batched.sender.cq_overflowed && !batched.receiver.cq_overflowed);
}

/// Cross-backend byte identity: the same logical byte stream pushed
/// through the coalesced+batched BCopy path on the deterministic
/// simulator and on the real-thread backend must produce the same
/// FNV-1a digest (which both must share with the locally computed
/// reference digest of the pattern stream).
#[test]
fn sim_and_threaded_backends_deliver_identical_bytes() {
    const MSGS: usize = 160;
    const LEN: usize = 96;
    let total = MSGS * LEN;
    let bytes: Vec<u8> = (0..total as u64).map(pattern).collect();
    let expected = fnv1a(FNV_OFFSET, &bytes);

    let cfg = ExsConfig {
        sq_depth: 64,
        ring_capacity: 64 << 10,
        credits: 64,
        ..ExsConfig::with_mode(ProtocolMode::BCopy)
    };

    // Simulator side: the blast harness sends the same pattern stream.
    let sim = run_blast(&BlastSpec {
        cfg: cfg.clone(),
        outstanding_sends: 8,
        outstanding_recvs: 8,
        sizes: SizeDist::Fixed(LEN as u64),
        messages: MSGS,
        verify: VerifyLevel::Full,
        seed: 9,
        ..BlastSpec::new(profiles::fdr_infiniband())
    });
    assert_eq!(sim.digest, expected, "simulator digest mismatch");
    assert!(sim.sender.coalesced_msgs > 0);
    assert!(sim.sender.mean_wqes_per_doorbell() > 1.0);

    // Threaded side: same messages, issued without waiting so the
    // pipeline can coalesce and batch; the receiver folds the stream
    // through deliberately misaligned chunk sizes (chunking must not
    // affect an FNV fold).
    let (a, b) = ThreadStream::pair(&cfg, Duration::ZERO);
    let reader = std::thread::spawn(move || {
        let mut digest = FNV_OFFSET;
        let mut got = 0usize;
        let mut chunk = 7usize;
        let mut buf = vec![0u8; 1024];
        while got < total {
            let take = chunk.min(total - got).min(buf.len());
            b.recv_exact(&mut buf[..take]).expect("threaded receive");
            digest = fnv1a(digest, &buf[..take]);
            got += take;
            chunk = chunk * 3 + 1;
            if chunk > 1024 {
                chunk = 5;
            }
        }
        digest
    });

    let mr = a.register(total, Access::NONE);
    a.node()
        .with_hca(|h| h.mem_mut().app_write(mr.key, mr.addr, &bytes))
        .expect("fill send buffer");
    let ids: Vec<u64> = (0..MSGS)
        .map(|m| a.send(&mr, (m * LEN) as u64, LEN as u64))
        .collect();
    a.flush();
    for id in ids {
        assert!(
            a.wait_send(id, Duration::from_secs(30)).is_some(),
            "threaded send timed out"
        );
    }
    let threaded_digest = reader.join().expect("reader thread");

    assert_eq!(threaded_digest, expected, "threaded digest mismatch");
    assert_eq!(threaded_digest, sim.digest);

    let st = a.stats();
    assert_eq!(st.bytes_sent, total as u64);
    assert!(st.doorbells > 0);
    assert!(st.wqes_posted >= st.doorbells);
    assert!(!st.cq_overflowed);
}
