//! Tests for `exs_cancel` (ES-API best-effort operation cancellation)
//! and asymmetric-link configurations.

use exs::{ExsConfig, ExsEvent, ProtocolMode, StreamSocket};
use rdma_verbs::profiles::ideal;
use rdma_verbs::{Access, NodeApp, SimNet};
use simnet::{LinkConfig, SimDuration, SimTime};

fn pair(net: &mut SimNet) -> (StreamSocket, StreamSocket) {
    let profile = ideal();
    let a = net.add_node(profile.host.clone(), profile.hca.clone());
    let b = net.add_node(profile.host.clone(), profile.hca.clone());
    net.connect_nodes(a, b, profile.link.clone(), 10);
    StreamSocket::pair(net, a, b, &ExsConfig::with_mode(ProtocolMode::DirectOnly))
}

#[test]
fn cancel_undispatched_send() {
    let mut net = SimNet::new();
    let (mut sa, _sb) = pair(&mut net);
    net.with_api(rdma_verbs::NodeId(0), |api| {
        let mr = api.register_mr(1024, Access::NONE);
        // Direct-only with no adverts: sends queue undispatched.
        sa.exs_send(api, &mr, 0, 100, 1);
        sa.exs_send(api, &mr, 100, 100, 2);
        assert!(!sa.sends_drained());
        // Cancel the second (fully undispatched) send.
        assert!(sa.exs_cancel(2));
        // Cancelling again or cancelling the unknown fails.
        assert!(!sa.exs_cancel(2));
        assert!(!sa.exs_cancel(99));
    });
}

#[test]
fn cancel_unadvertised_recv_only() {
    let mut net = SimNet::new();
    // Indirect-only: receives are never advertised, so they stay
    // cancellable until data arrives.
    let profile = ideal();
    let a = net.add_node(profile.host.clone(), profile.hca.clone());
    let b = net.add_node(profile.host.clone(), profile.hca.clone());
    net.connect_nodes(a, b, profile.link.clone(), 11);
    let (_sa, mut sb) = StreamSocket::pair(
        &mut net,
        a,
        b,
        &ExsConfig::with_mode(ProtocolMode::IndirectOnly),
    );
    net.with_api(b, |api| {
        let mr = api.register_mr(4096, Access::local_remote_write());
        sb.exs_recv(api, &mr, 0, 1024, false, 7);
        assert_eq!(sb.recvs_pending(), 1);
        assert!(sb.exs_cancel(7), "un-advertised receive is cancellable");
        assert_eq!(sb.recvs_pending(), 0);
    });
}

#[test]
fn advertised_recv_is_not_cancellable() {
    let mut net = SimNet::new();
    let profile = ideal();
    let a = net.add_node(profile.host.clone(), profile.hca.clone());
    let b = net.add_node(profile.host.clone(), profile.hca.clone());
    net.connect_nodes(a, b, profile.link.clone(), 12);
    let (_sa, mut sb) =
        StreamSocket::pair(&mut net, a, b, &ExsConfig::with_mode(ProtocolMode::Dynamic));
    net.with_api(b, |api| {
        let mr = api.register_mr(4096, Access::local_remote_write());
        // Dynamic mode with an empty ring: advertised immediately.
        sb.exs_recv(api, &mr, 0, 1024, false, 7);
        assert!(!sb.exs_cancel(7), "advertised receive must not cancel");
        assert_eq!(sb.recvs_pending(), 1);
    });
}

#[test]
fn cancelled_ops_produce_no_events_and_stream_continues() {
    let mut net = SimNet::new();
    let profile = ideal();
    let a = net.add_node(profile.host.clone(), profile.hca.clone());
    let b = net.add_node(profile.host.clone(), profile.hca.clone());
    net.connect_nodes(a, b, profile.link.clone(), 13);
    let (sa, sb) = StreamSocket::pair(
        &mut net,
        a,
        b,
        &ExsConfig::with_mode(ProtocolMode::IndirectOnly),
    );

    struct Tx {
        sock: Option<StreamSocket>,
        done: bool,
    }
    impl NodeApp for Tx {
        fn on_start(&mut self, api: &mut rdma_verbs::NodeApi<'_>) {
            let mr = api.register_mr(300, Access::NONE);
            api.write_mr(mr.key, mr.addr, &[7u8; 300]).unwrap();
            let sock = self.sock.as_mut().unwrap();
            sock.exs_send(api, &mr, 0, 100, 1);
            sock.exs_send(api, &mr, 100, 100, 2);
        }
        fn on_wake(&mut self, api: &mut rdma_verbs::NodeApi<'_>) {
            self.sock.as_mut().unwrap().handle_wake(api);
            let events = self.sock.as_mut().unwrap().take_events();
            self.done |= events
                .iter()
                .filter(|e| matches!(e, ExsEvent::SendComplete { .. }))
                .count()
                > 0;
        }
        fn is_done(&self) -> bool {
            self.done && self.sock.as_ref().unwrap().sends_drained()
        }
    }
    struct Rx {
        sock: Option<StreamSocket>,
        got: u64,
    }
    impl NodeApp for Rx {
        fn on_start(&mut self, api: &mut rdma_verbs::NodeApi<'_>) {
            let mr = api.register_mr(4096, Access::local_remote_write());
            let sock = self.sock.as_mut().unwrap();
            // Post three receives, cancel the middle one before data
            // arrives; the stream must flow through receives 0 and 2.
            sock.exs_recv(api, &mr, 0, 100, true, 0);
            sock.exs_recv(api, &mr, 1000, 100, true, 1);
            sock.exs_recv(api, &mr, 2000, 100, true, 2);
            assert!(sock.exs_cancel(1));
        }
        fn on_wake(&mut self, api: &mut rdma_verbs::NodeApi<'_>) {
            self.sock.as_mut().unwrap().handle_wake(api);
            for ev in self.sock.as_mut().unwrap().take_events() {
                if let ExsEvent::RecvComplete { id, len } = ev {
                    assert_ne!(id, 1, "cancelled receive must not complete");
                    self.got += len as u64;
                }
            }
        }
        fn is_done(&self) -> bool {
            self.got == 200
        }
    }
    let mut tx = Tx {
        sock: Some(sa),
        done: false,
    };
    let mut rx = Rx {
        sock: Some(sb),
        got: 0,
    };
    let outcome = net.run(&mut [&mut tx, &mut rx], SimTime::from_secs(1));
    assert!(outcome.completed, "{outcome:?} got={}", rx.got);
}

#[test]
fn asymmetric_links_apply_per_direction() {
    // Fat a→b, thin b→a: a 1 MiB transfer a→b is fast; the same b→a is
    // ~100× slower.
    let profile = ideal();
    let fat = LinkConfig::simple(100_000_000_000, SimDuration::from_micros(1));
    let thin = LinkConfig::simple(1_000_000_000, SimDuration::from_micros(1));

    let run_one = |forward: bool| -> SimTime {
        let mut net = SimNet::new();
        let a = net.add_node(profile.host.clone(), profile.hca.clone());
        let b = net.add_node(profile.host.clone(), profile.hca.clone());
        net.connect_nodes_asymmetric(a, b, fat.clone(), thin.clone(), 14);
        let (mut sa, mut sb) = StreamSocket::pair(
            &mut net,
            a,
            b,
            &ExsConfig::with_mode(ProtocolMode::IndirectOnly),
        );
        let (tx_node, tx_sock, rx_node, rx_sock) = if forward {
            (a, &mut sa, b, &mut sb)
        } else {
            (b, &mut sb, a, &mut sa)
        };
        net.with_api(tx_node, |api| {
            let mr = api.register_mr(1 << 20, Access::NONE);
            tx_sock.exs_send(api, &mr, 0, 1 << 20, 1);
        });
        net.with_api(rx_node, |api| {
            let mr = api.register_mr(1 << 20, Access::local_remote_write());
            rx_sock.exs_recv(api, &mr, 0, 1 << 20, true, 1);
        });

        struct Drive<'s> {
            sock: &'s mut StreamSocket,
            want_recv: bool,
            done: bool,
        }
        impl NodeApp for Drive<'_> {
            fn on_start(&mut self, _api: &mut rdma_verbs::NodeApi<'_>) {}
            fn on_wake(&mut self, api: &mut rdma_verbs::NodeApi<'_>) {
                self.sock.handle_wake(api);
                for ev in self.sock.take_events() {
                    match ev {
                        ExsEvent::RecvComplete { .. } if self.want_recv => self.done = true,
                        ExsEvent::SendComplete { .. } if !self.want_recv => self.done = true,
                        _ => {}
                    }
                }
            }
            fn is_done(&self) -> bool {
                self.done
            }
        }
        let (mut da, mut db) = (
            Drive {
                sock: &mut sa,
                want_recv: !forward,
                done: false,
            },
            Drive {
                sock: &mut sb,
                want_recv: forward,
                done: false,
            },
        );
        let outcome = net.run(&mut [&mut da, &mut db], SimTime::from_secs(10));
        assert!(outcome.completed);
        outcome.end
    };

    let fast = run_one(true);
    let slow = run_one(false);
    assert!(
        slow.as_nanos() > fast.as_nanos() * 20,
        "thin direction must be much slower: {fast:?} vs {slow:?}"
    );
}
