//! Property test for the batched transmit pipeline: random flush
//! points, message sizes spanning the coalesce threshold, and random
//! receiver pacing (which drives the dynamic protocol back and forth
//! across the direct ↔ indirect phase switch) must never reorder or
//! drop stream bytes.
//!
//! Unlike `proptest_protocol` (sans-IO halves on model channels), this
//! drives full [`StreamSocket`] pairs over the simulated fabric so the
//! postlist staging, selective signaling and coalescing hold are all in
//! the loop; every delivered byte is checked against its stream-offset
//! pattern inside the receiver.

use exs::{ExsConfig, ExsEvent, ProtocolMode, StreamSocket};
use proptest::prelude::*;
use rdma_verbs::profiles::ideal;
use rdma_verbs::{Access, MrInfo, NodeApi, NodeApp, SimNet};
use simnet::SimTime;

/// Deterministic stream byte pattern: the byte at stream offset `i`.
fn pattern(i: u64) -> u8 {
    (i.wrapping_mul(197).wrapping_add(i >> 7)) as u8
}

/// Sender that issues each planned message and calls `tx_flush` after
/// the ones flagged by the plan — the latency opt-out exercised at
/// arbitrary points in the stream.
struct FlushSender {
    sock: Option<StreamSocket>,
    /// One `(len, flush_after)` entry per message; each gets its own MR.
    plan: Vec<(u64, bool)>,
    slots: Vec<MrInfo>,
    next: usize,
    inflight: usize,
    outstanding: usize,
    completed: usize,
    stream_pos: u64,
}

impl FlushSender {
    fn new(plan: Vec<(u64, bool)>, outstanding: usize) -> Self {
        FlushSender {
            sock: None,
            plan,
            slots: Vec::new(),
            next: 0,
            inflight: 0,
            outstanding,
            completed: 0,
            stream_pos: 0,
        }
    }

    fn setup(&mut self, api: &mut NodeApi<'_>, sock: StreamSocket) {
        for &(len, _) in &self.plan {
            self.slots.push(api.register_mr(len as usize, Access::NONE));
        }
        self.sock = Some(sock);
    }

    fn kick(&mut self, api: &mut NodeApi<'_>) {
        while self.inflight < self.outstanding && self.next < self.plan.len() {
            let (len, flush) = self.plan[self.next];
            let mr = self.slots[self.next];
            let data: Vec<u8> = (0..len).map(|i| pattern(self.stream_pos + i)).collect();
            api.write_mr(mr.key, mr.addr, &data).unwrap();
            let sock = self.sock.as_mut().unwrap();
            sock.exs_send(api, &mr, 0, len, self.next as u64);
            if flush {
                sock.tx_flush(api);
            }
            self.stream_pos += len;
            self.inflight += 1;
            self.next += 1;
        }
    }
}

impl NodeApp for FlushSender {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        self.kick(api);
    }
    fn on_wake(&mut self, api: &mut NodeApi<'_>) {
        let sock = self.sock.as_mut().unwrap();
        sock.handle_wake(api);
        for ev in sock.take_events() {
            if let ExsEvent::SendComplete { id, len } = ev {
                assert_eq!(len, self.plan[id as usize].0, "send completed short");
                self.inflight -= 1;
                self.completed += 1;
            }
        }
        self.kick(api);
    }
    fn is_done(&self) -> bool {
        self.completed == self.plan.len()
    }
}

/// Receiver that keeps a bounded number of fixed-length receives posted
/// and verifies every delivered byte against the stream pattern. The
/// bound (relative to the sender's pace) is what drags the dynamic
/// protocol between its direct and indirect phases.
struct VerifyingReceiver {
    sock: Option<StreamSocket>,
    slots: Vec<MrInfo>,
    free_slots: Vec<usize>,
    slot_of: std::collections::HashMap<u64, usize>,
    recv_len: u32,
    expected_total: u64,
    received: u64,
    next_id: u64,
}

impl VerifyingReceiver {
    fn new(recv_len: u32, outstanding: usize, expected_total: u64) -> Self {
        VerifyingReceiver {
            sock: None,
            slots: Vec::new(),
            free_slots: (0..outstanding).collect(),
            slot_of: std::collections::HashMap::new(),
            recv_len,
            expected_total,
            received: 0,
            next_id: 0,
        }
    }

    fn setup(&mut self, api: &mut NodeApi<'_>, sock: StreamSocket) {
        for _ in 0..self.free_slots.len() {
            self.slots
                .push(api.register_mr(self.recv_len as usize, Access::local_remote_write()));
        }
        self.sock = Some(sock);
    }

    fn kick(&mut self, api: &mut NodeApi<'_>) {
        while let Some(slot) = self.free_slots.pop() {
            if self.received >= self.expected_total {
                self.free_slots.push(slot);
                break;
            }
            let mr = self.slots[slot];
            let id = self.next_id;
            self.next_id += 1;
            self.slot_of.insert(id, slot);
            self.sock
                .as_mut()
                .unwrap()
                .exs_recv(api, &mr, 0, self.recv_len, false, id);
        }
    }

    fn drain(&mut self, api: &mut NodeApi<'_>) {
        self.kick(api);
        loop {
            let events = self.sock.as_mut().unwrap().take_events();
            if events.is_empty() {
                break;
            }
            for ev in events {
                if let ExsEvent::RecvComplete { id, len } = ev {
                    let slot = self.slot_of.remove(&id).expect("slot for recv");
                    let mr = self.slots[slot];
                    let mut buf = vec![0u8; len as usize];
                    api.read_mr(mr.key, mr.addr, &mut buf).unwrap();
                    for (i, &b) in buf.iter().enumerate() {
                        assert_eq!(
                            b,
                            pattern(self.received + i as u64),
                            "stream byte reordered or dropped at offset {}",
                            self.received + i as u64
                        );
                    }
                    self.received += len as u64;
                    self.free_slots.push(slot);
                }
            }
            self.kick(api);
        }
    }
}

impl NodeApp for VerifyingReceiver {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        self.drain(api);
    }
    fn on_wake(&mut self, api: &mut NodeApi<'_>) {
        self.sock.as_mut().unwrap().handle_wake(api);
        self.drain(api);
    }
    fn is_done(&self) -> bool {
        self.received == self.expected_total
    }
}

/// One randomized exchange; panics (→ proptest failure) on corruption,
/// deadlock, or a short stream.
fn run_case(
    mode: ProtocolMode,
    plan: Vec<(u64, bool)>,
    send_outstanding: usize,
    recv_len: u32,
    recv_outstanding: usize,
    seed: u64,
) -> (u64, exs::ConnStats) {
    let total: u64 = plan.iter().map(|&(len, _)| len).sum();
    let profile = ideal();
    let mut net = SimNet::new();
    let a = net.add_node(profile.host.clone(), profile.hca.clone());
    let b = net.add_node(profile.host.clone(), profile.hca.clone());
    net.connect_nodes(a, b, profile.link.clone(), seed);

    let cfg = ExsConfig {
        // Small enough that random workloads cross the advert/ring
        // boundaries, large enough to satisfy `validate`.
        ring_capacity: 8 << 10,
        credits: 16,
        sq_depth: 16,
        ..ExsConfig::with_mode(mode)
    };
    let (sock_a, sock_b) = StreamSocket::pair(&mut net, a, b, &cfg);

    let mut sender = FlushSender::new(plan, send_outstanding);
    let mut receiver = VerifyingReceiver::new(recv_len, recv_outstanding, total);
    net.with_api(a, |api| sender.setup(api, sock_a));
    net.with_api(b, |api| receiver.setup(api, sock_b));

    let outcome = net.run(&mut [&mut sender, &mut receiver], SimTime::from_secs(100));
    assert!(
        outcome.completed,
        "exchange stalled: sent {}/{} received {}/{}",
        sender.completed,
        sender.plan.len(),
        receiver.received,
        receiver.expected_total,
    );
    let stats = sender.sock.as_ref().unwrap().stats().clone();
    (receiver.received, stats)
}

fn plan_strategy() -> impl Strategy<Value = Vec<(u64, bool)>> {
    // Sizes straddle the 256-byte coalesce threshold and the recv-len
    // boundaries; the bool is a tx_flush after that message.
    prop::collection::vec((1u64..=1200, any::<bool>()), 1..24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Dynamic mode: random flush points across direct ↔ indirect
    /// phase switches preserve the exact byte stream.
    #[test]
    fn random_flushes_preserve_stream_dynamic(
        plan in plan_strategy(),
        send_outstanding in 1usize..=6,
        recv_len in 1u32..=2048,
        recv_outstanding in 1usize..=4,
        seed in 0u64..1_000_000,
    ) {
        let total: u64 = plan.iter().map(|&(len, _)| len).sum();
        let (received, stats) = run_case(
            ProtocolMode::Dynamic,
            plan,
            send_outstanding,
            recv_len,
            recv_outstanding,
            seed,
        );
        prop_assert_eq!(received, total);
        prop_assert_eq!(stats.direct_bytes + stats.indirect_bytes, total);
    }

    /// BCopy mode: the same property with small-send coalescing in the
    /// loop — flushes close coalesce runs at arbitrary points.
    #[test]
    fn random_flushes_preserve_stream_bcopy(
        plan in plan_strategy(),
        send_outstanding in 1usize..=6,
        recv_len in 1u32..=2048,
        recv_outstanding in 1usize..=4,
        seed in 0u64..1_000_000,
    ) {
        let total: u64 = plan.iter().map(|&(len, _)| len).sum();
        let (received, stats) = run_case(
            ProtocolMode::BCopy,
            plan,
            send_outstanding,
            recv_len,
            recv_outstanding,
            seed,
        );
        prop_assert_eq!(received, total);
        prop_assert_eq!(stats.indirect_bytes, total);
    }
}
