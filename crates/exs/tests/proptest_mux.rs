//! Property tests for shared-transport multiplexing: arbitrary numbers
//! of streams post messages of random sizes in a random interleaved
//! schedule over one pooled QP set, and every stream must deliver its
//! bytes exactly, in order, with no cross-stream contamination — on
//! both the simulated and the threaded backend.

use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;

use exs::threaded::connect_mux_over;
use exs::{connect_mux_pair, ExsConfig, MuxEndpoint, MuxEvent, ThreadPort, VerbsPort};
use rdma_verbs::{
    Access, HcaConfig, HostModel, MrInfo, NodeApi, NodeApp, SimNet, ThreadNet, ThreadNode,
};
use simnet::{LinkConfig, SimDuration, SimTime};

fn small_cfg() -> ExsConfig {
    ExsConfig {
        ring_capacity: 4096,
        credits: 16,
        sq_depth: 64,
        ..ExsConfig::default()
    }
}

fn fnv1a(acc: u64, bytes: &[u8]) -> u64 {
    let mut h = acc;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn payload(stream: usize, i: usize) -> u8 {
    (stream * 97 + i * 31) as u8
}

fn lcg(s: &mut u64) -> u64 {
    *s = s
        .wrapping_mul(6_364_136_223_846_793_005)
        .wrapping_add(1_442_695_040_888_963_407);
    *s >> 33
}

/// One generated workload: per-stream message sizes, a random
/// cross-stream posting schedule, and random receive-buffer splits.
struct Plan {
    /// Per-stream message sizes, posted in order within the stream.
    sizes: Vec<Vec<usize>>,
    /// Stream index sequence: each entry posts that stream's next
    /// message (a uniformly random interleaving of all streams).
    schedule: Vec<usize>,
    /// Per-stream `waitall` receive lengths, summing to the stream's
    /// total — random split points exercise multi-op receive queues.
    recv_splits: Vec<Vec<u32>>,
}

impl Plan {
    fn build(sizes: Vec<Vec<usize>>, seed: u64) -> Plan {
        let mut rng = seed | 1;
        let mut remaining: Vec<usize> = sizes.iter().map(Vec::len).collect();
        let mut schedule = Vec::new();
        while remaining.iter().any(|&r| r > 0) {
            let live: Vec<usize> = (0..sizes.len()).filter(|&s| remaining[s] > 0).collect();
            let pick = live[(lcg(&mut rng) as usize) % live.len()];
            remaining[pick] -= 1;
            schedule.push(pick);
        }
        let recv_splits = sizes
            .iter()
            .map(|msgs| {
                let total: usize = msgs.iter().sum();
                let mut splits = Vec::new();
                let mut left = total;
                while left > 0 {
                    let take = if left <= 2 || lcg(&mut rng).is_multiple_of(3) {
                        left
                    } else {
                        1 + (lcg(&mut rng) as usize) % (left - 1)
                    };
                    splits.push(take as u32);
                    left -= take;
                }
                splits
            })
            .collect();
        Plan {
            sizes,
            schedule,
            recv_splits,
        }
    }

    fn total(&self, stream: usize) -> usize {
        self.sizes[stream].iter().sum()
    }
}

fn recvs_done(evs: &[MuxEvent]) -> usize {
    evs.iter()
        .filter(|e| matches!(e, MuxEvent::RecvComplete { .. }))
        .count()
}

fn sends_done(evs: &[MuxEvent]) -> usize {
    evs.iter()
        .filter(|e| matches!(e, MuxEvent::SendComplete { .. }))
        .count()
}

/// Checks delivered bytes against the pattern, per stream, and that no
/// stream saw another's bytes (the pattern differs per stream).
fn check_delivery(bufs: &[Vec<u8>], plan: &Plan) {
    for (stream, buf) in bufs.iter().enumerate() {
        let want: Vec<u8> = (0..plan.total(stream))
            .map(|i| payload(stream, i))
            .collect();
        assert_eq!(
            fnv1a(0xcbf2_9ce4_8422_2325, buf),
            fnv1a(0xcbf2_9ce4_8422_2325, &want),
            "stream {stream} delivered wrong bytes"
        );
    }
}

// --- simulated backend ------------------------------------------------

struct Host {
    ep: Option<MuxEndpoint>,
    events: Vec<MuxEvent>,
    want_sends: usize,
    want_recvs: usize,
}

impl NodeApp for Host {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        self.on_wake(api);
    }
    fn on_wake(&mut self, api: &mut NodeApi<'_>) {
        let ep = self.ep.as_mut().unwrap();
        ep.handle_wake(api);
        self.events.extend(ep.take_events());
    }
    fn is_done(&self) -> bool {
        sends_done(&self.events) >= self.want_sends
            && recvs_done(&self.events) >= self.want_recvs
            && self.ep.as_ref().unwrap().sends_drained()
    }
}

fn run_sim(plan: &Plan) {
    let cfg = small_cfg();
    let mut net = SimNet::new();
    let na = net.add_node(HostModel::free(), HcaConfig::default());
    let nb = net.add_node(HostModel::free(), HcaConfig::default());
    net.connect_nodes(
        na,
        nb,
        LinkConfig::simple(100_000_000_000, SimDuration::from_micros(1)),
        0,
    );
    let streams = plan.sizes.len();
    let mut a = MuxEndpoint::new(na, &cfg);
    let mut b = MuxEndpoint::new(nb, &cfg);
    for id in 0..streams as u32 {
        a.open_stream(id).unwrap();
        b.open_stream(id).unwrap();
    }
    connect_mux_pair(&mut net, &mut a, &mut b);

    let send_mrs: Vec<MrInfo> = (0..streams)
        .map(|s| {
            net.with_api(na, |api| {
                let mr = api.register_mr(plan.total(s).max(1), Access::NONE);
                let data: Vec<u8> = (0..plan.total(s)).map(|i| payload(s, i)).collect();
                api.write_mr(mr.key, mr.addr, &data).unwrap();
                mr
            })
        })
        .collect();
    let recv_mrs: Vec<MrInfo> = (0..streams)
        .map(|s| {
            net.with_api(nb, |api| {
                api.register_mr(plan.total(s).max(1), Access::local_remote_write())
            })
        })
        .collect();

    let mut want_recvs = 0;
    net.with_api(nb, |api| {
        for (s, splits) in plan.recv_splits.iter().enumerate() {
            let mut off = 0u64;
            for (i, &len) in splits.iter().enumerate() {
                b.mux_recv(api, s as u32, &recv_mrs[s], off, len, true, i as u64)
                    .unwrap();
                off += len as u64;
                want_recvs += 1;
            }
        }
    });
    let mut next_msg = vec![0usize; streams];
    let mut offsets = vec![0u64; streams];
    net.with_api(na, |api| {
        for &s in &plan.schedule {
            let len = plan.sizes[s][next_msg[s]];
            a.mux_send(
                api,
                s as u32,
                &send_mrs[s],
                offsets[s],
                len as u64,
                next_msg[s] as u64,
            )
            .unwrap();
            offsets[s] += len as u64;
            next_msg[s] += 1;
        }
    });

    let mut ha = Host {
        ep: Some(a),
        events: Vec::new(),
        want_sends: plan.schedule.len(),
        want_recvs: 0,
    };
    let mut hb = Host {
        ep: Some(b),
        events: Vec::new(),
        want_sends: 0,
        want_recvs,
    };
    let outcome = net.run(&mut [&mut ha, &mut hb], SimTime::from_secs(30));
    assert!(
        outcome.completed,
        "sim mux run stalled: sends {}/{} recvs {}/{}",
        sends_done(&ha.events),
        plan.schedule.len(),
        recvs_done(&hb.events),
        want_recvs,
    );

    let bufs: Vec<Vec<u8>> = net.with_api(nb, |api| {
        recv_mrs
            .iter()
            .enumerate()
            .map(|(s, mr)| {
                let mut buf = vec![0u8; plan.total(s)];
                api.read_mr(mr.key, mr.addr, &mut buf).unwrap();
                buf
            })
            .collect()
    });
    check_delivery(&bufs, plan);
    let a = ha.ep.take().unwrap();
    let b = hb.ep.take().unwrap();
    assert_eq!(a.stats().protocol_errors, 0);
    assert_eq!(b.stats().protocol_errors, 0);
    assert_eq!(b.stats().mux_demux_errors, 0);
    assert!(a.last_error().is_none() && b.last_error().is_none());
}

// --- threaded backend -------------------------------------------------

fn drive(
    net: &ThreadNet,
    nodes: (&Arc<ThreadNode>, &Arc<ThreadNode>),
    a: &mut MuxEndpoint,
    b: &mut MuxEndpoint,
    want_sends: usize,
    want_recvs: usize,
) -> (Vec<MuxEvent>, Vec<MuxEvent>) {
    let deadline = Instant::now() + Duration::from_secs(30);
    let (mut ev_a, mut ev_b) = (Vec::new(), Vec::new());
    loop {
        {
            let mut port = ThreadPort::new(net, nodes.0);
            a.handle_wake(&mut port);
            ev_a.extend(a.take_events());
        }
        {
            let mut port = ThreadPort::new(net, nodes.1);
            b.handle_wake(&mut port);
            ev_b.extend(b.take_events());
        }
        if sends_done(&ev_a) >= want_sends && recvs_done(&ev_b) >= want_recvs && a.sends_drained() {
            return (ev_a, ev_b);
        }
        assert!(
            Instant::now() < deadline,
            "threaded mux run stalled: sends {}/{want_sends} recvs {}/{want_recvs}",
            sends_done(&ev_a),
            recvs_done(&ev_b),
        );
        std::thread::sleep(Duration::from_micros(100));
    }
}

fn run_threaded(plan: &Plan) {
    let cfg = small_cfg();
    let mut net = ThreadNet::new();
    let na = net.add_node(HcaConfig::default());
    let nb = net.add_node(HcaConfig::default());
    net.connect_nodes(&na, &nb, Duration::from_micros(20));
    let streams = plan.sizes.len();
    let mut a = MuxEndpoint::new(na.id(), &cfg);
    let mut b = MuxEndpoint::new(nb.id(), &cfg);
    for id in 0..streams as u32 {
        a.open_stream(id).unwrap();
        b.open_stream(id).unwrap();
    }
    connect_mux_over(&net, (&na, &mut a), (&nb, &mut b));

    let send_mrs: Vec<MrInfo> = (0..streams)
        .map(|s| {
            let mut port = ThreadPort::new(&net, &na);
            let mr = port.register_mr(plan.total(s).max(1), Access::NONE);
            let data: Vec<u8> = (0..plan.total(s)).map(|i| payload(s, i)).collect();
            port.write_mr(mr.key, mr.addr, &data).unwrap();
            mr
        })
        .collect();
    let recv_mrs: Vec<MrInfo> = (0..streams)
        .map(|s| {
            let mut port = ThreadPort::new(&net, &nb);
            port.register_mr(plan.total(s).max(1), Access::local_remote_write())
        })
        .collect();

    let mut want_recvs = 0;
    {
        let mut port = ThreadPort::new(&net, &nb);
        for (s, splits) in plan.recv_splits.iter().enumerate() {
            let mut off = 0u64;
            for (i, &len) in splits.iter().enumerate() {
                b.mux_recv(&mut port, s as u32, &recv_mrs[s], off, len, true, i as u64)
                    .unwrap();
                off += len as u64;
                want_recvs += 1;
            }
        }
    }
    {
        let mut port = ThreadPort::new(&net, &na);
        let mut next_msg = vec![0usize; streams];
        let mut offsets = vec![0u64; streams];
        for &s in &plan.schedule {
            let len = plan.sizes[s][next_msg[s]];
            a.mux_send(
                &mut port,
                s as u32,
                &send_mrs[s],
                offsets[s],
                len as u64,
                next_msg[s] as u64,
            )
            .unwrap();
            offsets[s] += len as u64;
            next_msg[s] += 1;
        }
    }

    drive(
        &net,
        (&na, &nb),
        &mut a,
        &mut b,
        plan.schedule.len(),
        want_recvs,
    );

    let bufs: Vec<Vec<u8>> = {
        let port = ThreadPort::new(&net, &nb);
        recv_mrs
            .iter()
            .enumerate()
            .map(|(s, mr)| {
                let mut buf = vec![0u8; plan.total(s)];
                port.read_mr(mr.key, mr.addr, &mut buf).unwrap();
                buf
            })
            .collect()
    };
    check_delivery(&bufs, plan);
    assert_eq!(a.stats().protocol_errors, 0);
    assert_eq!(b.stats().protocol_errors, 0);
    assert_eq!(b.stats().mux_demux_errors, 0);
    net.quiesce();
}

fn sizes_strategy() -> impl Strategy<Value = Vec<Vec<usize>>> {
    proptest::collection::vec(proptest::collection::vec(1usize..1500, 1..4), 2..7)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Simulated backend: any interleaving of any message sizes over
    /// the shared pool delivers every stream exactly, in order.
    #[test]
    fn sim_interleaved_streams_never_cross_or_reorder(
        sizes in sizes_strategy(),
        seed in any::<u64>(),
    ) {
        run_sim(&Plan::build(sizes, seed));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Threaded backend: the same property under real-thread timing.
    #[test]
    fn threaded_interleaved_streams_never_cross_or_reorder(
        sizes in sizes_strategy(),
        seed in any::<u64>(),
    ) {
        run_threaded(&Plan::build(sizes, seed));
    }
}
