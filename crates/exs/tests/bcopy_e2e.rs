//! Tests for the rsockets-style BCopy baseline (paper §II-A): buffer
//! copies on both the send and the receive side, no ADVERTs, no
//! zero-copy — the mode the paper's protocol exists to improve upon.

use blast::{run_blast, BlastSpec, SizeDist, VerifyLevel};
use exs::{ExsConfig, ProtocolMode};
use rdma_verbs::profiles;

fn spec(mode: ProtocolMode) -> BlastSpec {
    BlastSpec {
        cfg: ExsConfig::with_mode(mode),
        outstanding_sends: 4,
        outstanding_recvs: 8,
        sizes: SizeDist::Fixed(256 << 10),
        messages: 60,
        verify: VerifyLevel::Full,
        seed: 77,
        ..BlastSpec::new(profiles::fdr_infiniband())
    }
}

#[test]
fn bcopy_delivers_verified_stream() {
    let report = run_blast(&spec(ProtocolMode::BCopy));
    assert_eq!(report.bytes, 60 * (256 << 10));
    // Everything goes through the intermediate buffer.
    assert_eq!(report.direct_transfers, 0);
    assert!(report.indirect_transfers > 0);
}

#[test]
fn bcopy_costs_sender_cpu() {
    let bcopy = run_blast(&spec(ProtocolMode::BCopy));
    let indirect = run_blast(&spec(ProtocolMode::IndirectOnly));
    let dynamic = run_blast(&BlastSpec {
        outstanding_recvs: 16,
        ..spec(ProtocolMode::Dynamic)
    });
    // BCopy pays a full extra copy at the sender.
    assert!(
        bcopy.cpu_sender > indirect.cpu_sender * 2.0,
        "BCopy sender CPU {} should far exceed zero-copy-send {}",
        bcopy.cpu_sender,
        indirect.cpu_sender
    );
    // And the dynamic protocol (direct in this configuration) beats it
    // on throughput — the paper's motivation for zero-copy.
    assert!(
        dynamic.throughput_bps() > bcopy.throughput_bps(),
        "dynamic {} should beat bcopy {}",
        dynamic.throughput_bps(),
        bcopy.throughput_bps()
    );
}

#[test]
fn bcopy_throughput_at_or_below_indirect() {
    // The receive path is identical to indirect-only; the sender-side
    // copy can only slow things down (or not, if the wire is the
    // bottleneck).
    let bcopy = run_blast(&spec(ProtocolMode::BCopy));
    let indirect = run_blast(&spec(ProtocolMode::IndirectOnly));
    assert!(bcopy.throughput_bps() <= indirect.throughput_bps() * 1.05);
}
