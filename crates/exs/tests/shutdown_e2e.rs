//! Graceful shutdown (FIN / end-of-stream) tests: the sender half-closes,
//! queued data still drains, the receiver sees exactly the stream's
//! bytes followed by end-of-stream, in every protocol mode.

use exs::{ExsConfig, ExsEvent, ProtocolMode, StreamSocket};
use rdma_verbs::profiles::{fdr_infiniband, ideal};
use rdma_verbs::{Access, MrInfo, NodeApi, NodeApp, SimNet};
use simnet::SimTime;

struct ClosingSender {
    sock: Option<StreamSocket>,
    mr: Option<MrInfo>,
    msgs: Vec<u64>,
    acked: usize,
    shutdown_sent: bool,
}

impl NodeApp for ClosingSender {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        let mr = self.mr.unwrap();
        let mut off = 0u64;
        for (i, &len) in self.msgs.iter().enumerate() {
            let data: Vec<u8> = (0..len).map(|j| (off + j) as u8).collect();
            api.write_mr(mr.key, mr.addr + off, &data).unwrap();
            self.sock
                .as_mut()
                .unwrap()
                .exs_send(api, &mr, off, len, i as u64);
            off += len;
        }
        // Half-close immediately, with everything still in flight: the
        // FIN must trail the data.
        self.sock.as_mut().unwrap().exs_shutdown(api);
        self.shutdown_sent = true;
    }
    fn on_wake(&mut self, api: &mut NodeApi<'_>) {
        self.sock.as_mut().unwrap().handle_wake(api);
        for ev in self.sock.as_mut().unwrap().take_events() {
            if matches!(ev, ExsEvent::SendComplete { .. }) {
                self.acked += 1;
            }
        }
    }
    fn is_done(&self) -> bool {
        self.acked == self.msgs.len()
    }
}

struct DrainingReceiver {
    sock: Option<StreamSocket>,
    mr: Option<MrInfo>,
    received: u64,
    expected: u64,
    eof_seen: bool,
    zero_len_recv: bool,
    next_id: u64,
    post_after_eof_done: bool,
}

impl DrainingReceiver {
    fn pump(&mut self, api: &mut NodeApi<'_>) {
        loop {
            let events = self.sock.as_mut().unwrap().take_events();
            let mut progressed = false;
            for ev in events {
                match ev {
                    ExsEvent::RecvComplete { len, .. } => {
                        if len == 0 {
                            self.zero_len_recv = true;
                        }
                        let mr = self.mr.unwrap();
                        let mut buf = vec![0u8; len as usize];
                        api.read_mr(mr.key, mr.addr, &mut buf).unwrap();
                        for (i, &b) in buf.iter().enumerate() {
                            assert_eq!(b, (self.received + i as u64) as u8);
                        }
                        self.received += len as u64;
                        progressed = true;
                    }
                    ExsEvent::PeerClosed => {
                        assert_eq!(
                            self.received, self.expected,
                            "EOF before the stream drained"
                        );
                        self.eof_seen = true;
                        progressed = true;
                    }
                    other => panic!("unexpected event {other:?}"),
                }
            }
            // Keep one receive posted until EOF; after EOF post one more
            // to observe the zero-length completion.
            let sock = self.sock.as_mut().unwrap();
            if !self.eof_seen {
                if sock.recvs_pending() == 0 && self.received < self.expected {
                    let mr = self.mr.unwrap();
                    sock.exs_recv(api, &mr, 0, 4096, false, self.next_id);
                    self.next_id += 1;
                    progressed = true;
                }
            } else if !self.post_after_eof_done {
                let mr = self.mr.unwrap();
                sock.exs_recv(api, &mr, 0, 4096, false, 999_999);
                self.post_after_eof_done = true;
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
    }
}

impl NodeApp for DrainingReceiver {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        self.pump(api);
    }
    fn on_wake(&mut self, api: &mut NodeApi<'_>) {
        self.sock.as_mut().unwrap().handle_wake(api);
        self.pump(api);
    }
    fn is_done(&self) -> bool {
        self.eof_seen && self.zero_len_recv
    }
}

fn run_close(mode: ProtocolMode, msgs: Vec<u64>) -> (ClosingSender, DrainingReceiver) {
    let profile = if mode == ProtocolMode::Dynamic {
        fdr_infiniband()
    } else {
        ideal()
    };
    let total: u64 = msgs.iter().sum();
    let mut net = SimNet::new();
    let a = net.add_node(profile.host.clone(), profile.hca.clone());
    let b = net.add_node(profile.host.clone(), profile.hca.clone());
    net.connect_nodes(a, b, profile.link.clone(), 6);
    let (sa, sb) = StreamSocket::pair(&mut net, a, b, &ExsConfig::with_mode(mode));
    let mut tx = ClosingSender {
        sock: Some(sa),
        mr: None,
        msgs,
        acked: 0,
        shutdown_sent: false,
    };
    let mut rx = DrainingReceiver {
        sock: Some(sb),
        mr: None,
        received: 0,
        expected: total,
        eof_seen: false,
        zero_len_recv: false,
        next_id: 0,
        post_after_eof_done: false,
    };
    net.with_api(a, |api| {
        tx.mr = Some(api.register_mr(total.max(1) as usize, Access::NONE));
    });
    net.with_api(b, |api| {
        rx.mr = Some(api.register_mr(4096, Access::local_remote_write()));
    });
    let outcome = net.run(&mut [&mut tx, &mut rx], SimTime::from_secs(30));
    assert!(
        outcome.completed,
        "close flow stalled: received {}/{} eof={} zero={}",
        rx.received, rx.expected, rx.eof_seen, rx.zero_len_recv
    );
    (tx, rx)
}

#[test]
fn shutdown_drains_then_eof_all_modes() {
    for mode in [
        ProtocolMode::Dynamic,
        ProtocolMode::DirectOnly,
        ProtocolMode::IndirectOnly,
    ] {
        let (_, rx) = run_close(mode, vec![5000, 1, 12_000, 300]);
        assert_eq!(rx.received, 17_301, "mode {mode:?}");
        assert!(rx.eof_seen);
        assert!(rx.zero_len_recv, "post-EOF receive must complete empty");
    }
}

#[test]
fn shutdown_of_empty_stream() {
    let (_, rx) = run_close(ProtocolMode::Dynamic, vec![]);
    assert_eq!(rx.received, 0);
    assert!(rx.eof_seen);
}

#[test]
fn shutdown_is_idempotent_and_blocks_sends() {
    let profile = ideal();
    let mut net = SimNet::new();
    let a = net.add_node(profile.host.clone(), profile.hca.clone());
    let b = net.add_node(profile.host.clone(), profile.hca.clone());
    net.connect_nodes(a, b, profile.link.clone(), 7);
    let (mut sa, _sb) = StreamSocket::pair(&mut net, a, b, &ExsConfig::default());
    net.with_api(a, |api| {
        sa.exs_shutdown(api);
        sa.exs_shutdown(api); // idempotent
        assert!(sa.send_closed());
    });
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        net.with_api(a, |api| {
            let mr = api.register_mr(8, Access::NONE);
            sa.exs_send(api, &mr, 0, 8, 1);
        });
    }));
    assert!(result.is_err(), "send after shutdown must panic");
}
