//! Property tests for the reactor's readiness contract.
//!
//! Under randomized workload shapes — connection counts, message sizes,
//! outstanding-send depth, per-poll budgets, drain batch sizes and host
//! jitter seeds (which randomize the CQE interleavings across the
//! shared CQs) — the reactor must never lose or duplicate readiness:
//!
//! * a connection with pending completed events is reported readable in
//!   the same poll cycle (checked after **every** poll);
//! * every posted operation completes exactly once (no lost CQEs, no
//!   duplicated completions);
//! * each stream's bytes arrive in order (pattern-verified).

use std::collections::{HashMap, HashSet};

use proptest::prelude::*;

use exs::{ConnId, ExsConfig, ExsEvent, Reactor, ReactorConfig, StreamSocket};
use rdma_verbs::{profiles, Access, MrInfo, NodeApi, NodeApp, NodeId, SimNet};
use simnet::SimTime;

fn pattern(seed: u64, conn: usize, off: u64) -> u8 {
    off.wrapping_mul(31)
        .wrapping_add(conn as u64 * 7)
        .wrapping_add(seed) as u8
}

struct PropClient {
    sock: StreamSocket,
    idx: usize,
    slots: Vec<MrInfo>,
    free: Vec<usize>,
    slot_of: HashMap<u64, usize>,
    sent: usize,
    acked: usize,
    pos: u64,
    shutdown: bool,
    msgs: usize,
    msg_len: u64,
    seed: u64,
}

impl PropClient {
    fn kick(&mut self, api: &mut NodeApi<'_>) {
        while self.sent < self.msgs {
            let Some(slot) = self.free.pop() else { break };
            let mr = self.slots[slot];
            let data: Vec<u8> = (0..self.msg_len)
                .map(|i| pattern(self.seed, self.idx, self.pos + i))
                .collect();
            api.write_mr(mr.key, mr.addr, &data).unwrap();
            self.slot_of.insert(self.sent as u64, slot);
            self.sock
                .exs_send(api, &mr, 0, self.msg_len, self.sent as u64);
            self.pos += self.msg_len;
            self.sent += 1;
        }
        if self.sent == self.msgs && self.acked == self.msgs && !self.shutdown {
            self.sock.exs_shutdown(api);
            self.shutdown = true;
        }
    }
}

impl NodeApp for PropClient {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        self.kick(api);
    }
    fn on_wake(&mut self, api: &mut NodeApi<'_>) {
        self.sock.handle_wake(api);
        for ev in self.sock.take_events() {
            if let ExsEvent::SendComplete { id, .. } = ev {
                self.free.push(self.slot_of.remove(&id).expect("send slot"));
                self.acked += 1;
            }
        }
        self.kick(api);
    }
    fn is_done(&self) -> bool {
        self.shutdown
    }
}

struct PropServer {
    reactor: Reactor,
    mrs: Vec<MrInfo>,
    recv_len: u32,
    expected: u64,
    received: Vec<u64>,
    eof: Vec<bool>,
    outstanding: Vec<bool>,
    /// Every completed receive id ever observed (duplicate detection).
    seen_recv_ids: HashSet<u64>,
    posted_recvs: u64,
    completed_recvs: u64,
    seed: u64,
    next_id: u64,
}

impl PropServer {
    fn handle_conn(&mut self, api: &mut NodeApi<'_>, conn: ConnId) -> bool {
        let idx = conn.0 as usize;
        let events = self.reactor.take_events(conn);
        let mut progressed = !events.is_empty();
        for ev in events {
            match ev {
                ExsEvent::RecvComplete { id, len } => {
                    assert!(
                        self.seen_recv_ids.insert(id),
                        "receive {id} completed twice on conn {idx}"
                    );
                    assert!(self.outstanding[idx], "completion without a posted recv");
                    self.outstanding[idx] = false;
                    self.completed_recvs += 1;
                    if len > 0 {
                        let mr = self.mrs[idx];
                        let mut buf = vec![0u8; len as usize];
                        api.read_mr(mr.key, mr.addr, &mut buf).unwrap();
                        for (i, &b) in buf.iter().enumerate() {
                            assert_eq!(
                                b,
                                pattern(self.seed, idx, self.received[idx] + i as u64),
                                "conn {idx} out of order at {}",
                                self.received[idx] + i as u64
                            );
                        }
                        self.received[idx] += len as u64;
                    }
                }
                ExsEvent::PeerClosed => self.eof[idx] = true,
                ExsEvent::ConnectionError => panic!("conn {idx} broke"),
                ExsEvent::SendComplete { .. } => {}
            }
        }
        if !self.eof[idx] && !self.outstanding[idx] && self.received[idx] < self.expected {
            let mr = self.mrs[idx];
            let id = self.next_id;
            self.next_id += 1;
            self.reactor
                .conn_mut(conn)
                .exs_recv(api, &mr, 0, self.recv_len, false, id);
            self.outstanding[idx] = true;
            self.posted_recvs += 1;
            progressed = true;
        }
        progressed
    }

    fn service(&mut self, api: &mut NodeApi<'_>) {
        loop {
            let ready = self.reactor.poll(api);
            // THE readiness invariant: after a poll, any connection
            // holding undelivered events must have been reported
            // readable in that poll's result.
            let readable: HashSet<u32> = ready
                .iter()
                .filter(|(_, r)| r.readable)
                .map(|(c, _)| c.0)
                .collect();
            for conn in self.reactor.conn_ids() {
                if self.reactor.conn(conn).events_pending() > 0 {
                    assert!(
                        readable.contains(&conn.0),
                        "conn {} has pending events but was not reported readable",
                        conn.0
                    );
                }
            }
            let mut progressed = false;
            for (conn, r) in ready {
                if r.readable || r.closed || r.error {
                    progressed |= self.handle_conn(api, conn);
                }
            }
            if !progressed && !self.reactor.has_backlog() {
                break;
            }
        }
    }
}

impl NodeApp for PropServer {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        for conn in self.reactor.conn_ids() {
            self.handle_conn(api, conn);
        }
    }
    fn on_wake(&mut self, api: &mut NodeApi<'_>) {
        self.service(api);
    }
    fn is_done(&self) -> bool {
        self.eof.iter().all(|&e| e) && self.received.iter().all(|&r| r == self.expected)
    }
}

/// Runs one randomized fan-in through the reactor; panics on any
/// invariant violation. Returns (reactor deferrals, cqes dispatched).
fn run_case(
    conns: usize,
    msgs: usize,
    msg_len: u64,
    outstanding: usize,
    budget: usize,
    drain: usize,
    seed: u64,
) -> (u64, u64) {
    let profile = profiles::fdr_infiniband();
    let cfg = ExsConfig {
        ring_capacity: 4096,
        credits: 8,
        sq_depth: 8,
        ..ExsConfig::default()
    };
    let recv_len = msg_len.clamp(1, 2048) as u32;
    let expected = msgs as u64 * msg_len;

    let mut net = SimNet::new();
    net.set_host_seed(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let server_node = net.add_node(profile.host.clone(), profile.hca.clone());
    let client_nodes: Vec<NodeId> = (0..conns)
        .map(|_| net.add_node(profile.host.clone(), profile.hca.clone()))
        .collect();
    for (i, &c) in client_nodes.iter().enumerate() {
        net.connect_nodes(
            c,
            server_node,
            profile.link.clone(),
            seed.wrapping_add(i as u64),
        );
    }

    let per_conn_cq = cfg.sq_depth * 2 + cfg.credits as usize * 2;
    let (send_cq, recv_cq) = net.with_api(server_node, |api| {
        (
            api.create_cq(per_conn_cq * conns),
            api.create_cq(per_conn_cq * conns),
        )
    });
    let mut reactor = Reactor::new(
        send_cq,
        recv_cq,
        ReactorConfig {
            cqe_budget: budget,
            drain_batch: drain,
        },
    );

    let mut clients = Vec::new();
    let mut mrs = Vec::new();
    for (idx, &cnode) in client_nodes.iter().enumerate() {
        let (csock, ssock) =
            StreamSocket::pair_shared(&mut net, cnode, server_node, send_cq, recv_cq, &cfg);
        reactor.accept(ssock);
        let slots: Vec<MrInfo> = net.with_api(cnode, |api| {
            (0..outstanding)
                .map(|_| api.register_mr(msg_len as usize, Access::NONE))
                .collect()
        });
        let free = (0..slots.len()).collect();
        clients.push(PropClient {
            sock: csock,
            idx,
            slots,
            free,
            slot_of: HashMap::new(),
            sent: 0,
            acked: 0,
            pos: 0,
            shutdown: false,
            msgs,
            msg_len,
            seed,
        });
        mrs.push(net.with_api(server_node, |api| {
            api.register_mr(recv_len as usize, Access::local_remote_write())
        }));
    }

    let mut server = PropServer {
        reactor,
        mrs,
        recv_len,
        expected,
        received: vec![0; conns],
        eof: vec![false; conns],
        outstanding: vec![false; conns],
        seen_recv_ids: HashSet::new(),
        posted_recvs: 0,
        completed_recvs: 0,
        seed,
        next_id: 0,
    };

    let mut apps: Vec<&mut dyn NodeApp> = Vec::with_capacity(1 + conns);
    apps.push(&mut server);
    for c in clients.iter_mut() {
        apps.push(c);
    }
    let outcome = net.run(&mut apps, SimTime::from_secs(600));
    assert!(outcome.completed, "reactor workload stalled: {outcome:?}");

    // No lost completions: every posted receive completed (the final
    // one via the zero-length EOF path), each exactly once.
    assert_eq!(server.posted_recvs, server.completed_recvs);
    assert_eq!(server.seen_recv_ids.len() as u64, server.completed_recvs);
    let stats = server.reactor.stats().clone();
    assert_eq!(stats.orphan_cqes, 0);
    (stats.deferrals, stats.cqes_dispatched)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized CQE interleavings never lose or duplicate readiness.
    #[test]
    fn readiness_no_loss_no_dup(
        (conns, msgs, msg_len) in (2usize..6, 1usize..5, 1u64..5000),
        (outstanding, budget, drain) in (1usize..4, 1usize..9, 1usize..65),
        seed in 0u64..10_000,
    ) {
        run_case(conns, msgs, msg_len, outstanding, budget, drain, seed);
    }
}

/// A budget of 1 with chunked multi-CQE traffic must exercise (and
/// count) fairness deferrals — the deferred completions are then picked
/// up without any new wake edge, which is what `has_backlog` guards.
#[test]
fn budget_one_defers_and_still_drains() {
    let (deferrals, dispatched) = run_case(3, 4, 8192, 2, 1, 4, 42);
    assert!(dispatched > 0);
    assert!(
        deferrals > 0,
        "budget=1 over chunked traffic should have deferred at least once"
    );
}
