//! End-to-end tests for the SOCK_SEQPACKET message mode (paper §II-C):
//! message boundaries preserved, one send per receive, oversized
//! messages rejected rather than split.

use exs::{ExsConfig, SeqPacketEvent, SeqPacketSocket};
use rdma_verbs::profiles::{fdr_infiniband, ideal};
use rdma_verbs::{Access, MrInfo, NodeApi, NodeApp, SimNet};
use simnet::SimTime;

struct MsgSender {
    sock: Option<SeqPacketSocket>,
    mr: Option<MrInfo>,
    msgs: Vec<u32>,
    next: usize,
    completions: Vec<SeqPacketEvent>,
}

impl NodeApp for MsgSender {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        // Post everything up front; the library queues sends until
        // ADVERTs arrive.
        let mr = self.mr.unwrap();
        for (i, &len) in self.msgs.iter().enumerate() {
            let data: Vec<u8> = (0..len).map(|j| (i as u8) ^ (j as u8)).collect();
            api.write_mr(mr.key, mr.addr, &data).unwrap();
            self.sock
                .as_mut()
                .unwrap()
                .exs_send(api, &mr, 0, len, i as u64);
            self.next += 1;
        }
    }
    fn on_wake(&mut self, api: &mut NodeApi<'_>) {
        self.sock.as_mut().unwrap().handle_wake(api);
        self.completions
            .extend(self.sock.as_mut().unwrap().take_events());
    }
    fn is_done(&self) -> bool {
        self.completions.len() == self.msgs.len()
    }
}

struct MsgReceiver {
    sock: Option<SeqPacketSocket>,
    mrs: Vec<MrInfo>,
    recv_len: u32,
    posted: usize,
    expect: usize,
    received: Vec<(u64, u32)>,
}

impl MsgReceiver {
    fn post_all(&mut self, api: &mut NodeApi<'_>) {
        while self.posted < self.expect {
            let mr = api.register_mr(self.recv_len as usize, Access::local_remote_write());
            self.mrs.push(mr);
            self.sock
                .as_mut()
                .unwrap()
                .exs_recv(api, &mr, 0, self.recv_len, self.posted as u64);
            self.posted += 1;
        }
    }
}

impl NodeApp for MsgReceiver {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        self.post_all(api);
    }
    fn on_wake(&mut self, api: &mut NodeApi<'_>) {
        self.sock.as_mut().unwrap().handle_wake(api);
        for ev in self.sock.as_mut().unwrap().take_events() {
            if let SeqPacketEvent::RecvComplete { id, len } = ev {
                self.received.push((id, len));
            }
        }
    }
    fn is_done(&self) -> bool {
        self.received.len() >= self.expect
    }
}

fn run(msgs: Vec<u32>, recv_len: u32, expect_recv: usize) -> (MsgSender, MsgReceiver) {
    let profile = ideal();
    let mut net = SimNet::new();
    let a = net.add_node(profile.host.clone(), profile.hca.clone());
    let b = net.add_node(profile.host.clone(), profile.hca.clone());
    net.connect_nodes(a, b, profile.link.clone(), 1);
    let cfg = ExsConfig::default();
    let (sa, sb) = SeqPacketSocket::pair(&mut net, a, b, &cfg);

    let mut sender = MsgSender {
        sock: Some(sa),
        mr: None,
        msgs,
        next: 0,
        completions: Vec::new(),
    };
    let mut receiver = MsgReceiver {
        sock: Some(sb),
        mrs: Vec::new(),
        recv_len,
        posted: 0,
        expect: expect_recv,
        received: Vec::new(),
    };
    let max = sender.msgs.iter().copied().max().unwrap_or(1) as usize;
    net.with_api(a, |api| {
        sender.mr = Some(api.register_mr(max, Access::NONE));
    });
    let outcome = net.run(&mut [&mut sender, &mut receiver], SimTime::from_secs(10));
    assert!(outcome.completed, "run stalled: {outcome:?}");
    (sender, receiver)
}

#[test]
fn message_boundaries_preserved() {
    let msgs = vec![100, 1, 4096, 77, 2048];
    let (sender, receiver) = run(msgs.clone(), 4096, 5);
    assert_eq!(receiver.received.len(), 5);
    for (i, &(id, len)) in receiver.received.iter().enumerate() {
        assert_eq!(id, i as u64, "messages delivered in order");
        assert_eq!(len, msgs[i], "message boundary preserved");
    }
    assert!(sender
        .completions
        .iter()
        .all(|e| matches!(e, SeqPacketEvent::SendComplete { .. })));
}

#[test]
fn payload_bytes_intact() {
    // One message, checked byte for byte.
    let profile = ideal();
    let mut net = SimNet::new();
    let a = net.add_node(profile.host.clone(), profile.hca.clone());
    let b = net.add_node(profile.host.clone(), profile.hca.clone());
    net.connect_nodes(a, b, profile.link.clone(), 2);
    let (sa, sb) = SeqPacketSocket::pair(&mut net, a, b, &ExsConfig::default());

    let mut sender = MsgSender {
        sock: Some(sa),
        mr: None,
        msgs: vec![257],
        next: 0,
        completions: Vec::new(),
    };
    let mut receiver = MsgReceiver {
        sock: Some(sb),
        mrs: Vec::new(),
        recv_len: 512,
        posted: 0,
        expect: 1,
        received: Vec::new(),
    };
    net.with_api(a, |api| {
        sender.mr = Some(api.register_mr(257, Access::NONE));
    });
    let outcome = net.run(&mut [&mut sender, &mut receiver], SimTime::from_secs(10));
    assert!(outcome.completed);
    let mr = receiver.mrs[0];
    net.with_api(receiver.sock.as_ref().unwrap().node(), |api| {
        let mut buf = vec![0u8; 257];
        api.read_mr(mr.key, mr.addr, &mut buf).unwrap();
        for (j, &byte) in buf.iter().enumerate() {
            assert_eq!(byte, j as u8, "payload corrupted at {j}");
        }
    });
}

#[test]
fn oversized_message_is_an_error_not_a_split() {
    // 3 messages; the middle one exceeds the 1024-byte receive buffers.
    let msgs = vec![512u32, 2048, 512];
    let (sender, receiver) = run(msgs, 1024, 2);
    // The two valid messages arrive...
    assert_eq!(receiver.received.len(), 2);
    assert_eq!(receiver.received[0].1, 512);
    assert_eq!(receiver.received[1].1, 512);
    // ...and the oversized one errored at the sender.
    let errors: Vec<_> = sender
        .completions
        .iter()
        .filter(|e| matches!(e, SeqPacketEvent::SendError { .. }))
        .collect();
    assert_eq!(errors.len(), 1);
    assert!(matches!(
        errors[0],
        SeqPacketEvent::SendError {
            len: 2048,
            advertised: 1024,
            ..
        }
    ));
}

#[test]
fn sender_waits_for_adverts() {
    // With the ideal profile the sender starts instantly; messages must
    // still be queued until ADVERTs arrive rather than lost.
    let msgs = vec![64; 32];
    let (_, receiver) = run(msgs, 64, 32);
    assert_eq!(receiver.received.len(), 32);
}

#[test]
fn works_on_fdr_profile() {
    let profile = fdr_infiniband();
    let mut net = SimNet::new();
    let a = net.add_node(profile.host.clone(), profile.hca.clone());
    let b = net.add_node(profile.host.clone(), profile.hca.clone());
    net.connect_nodes(a, b, profile.link.clone(), 3);
    let (sa, sb) = SeqPacketSocket::pair(&mut net, a, b, &ExsConfig::default());
    let mut sender = MsgSender {
        sock: Some(sa),
        mr: None,
        msgs: vec![1 << 20; 10],
        next: 0,
        completions: Vec::new(),
    };
    let mut receiver = MsgReceiver {
        sock: Some(sb),
        mrs: Vec::new(),
        recv_len: 1 << 20,
        posted: 0,
        expect: 10,
        received: Vec::new(),
    };
    net.with_api(a, |api| {
        sender.mr = Some(api.register_mr(1 << 20, Access::NONE));
    });
    let outcome = net.run(&mut [&mut sender, &mut receiver], SimTime::from_secs(10));
    assert!(outcome.completed);
    assert_eq!(receiver.received.len(), 10);
    // 10 MiB over ~45 Gbit/s takes at least 1.8 ms.
    assert!(net.now() > SimTime::from_millis(1));
    let st = sender.sock.as_ref().unwrap().stats();
    assert_eq!(st.direct_transfers, 10);
    assert_eq!(st.direct_bytes, 10 << 20);
}
