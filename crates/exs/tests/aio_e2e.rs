//! End-to-end tests for the `exs::aio` async front-end: echo
//! round-trips, timeouts, select, drop-safe cancellation and stale-id
//! handling — on the deterministic simulator and the real-thread
//! backend, with the same task code.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

use exs::aio::{select, timeout, Either};
use exs::threaded::connect_sockets_shared;
use exs::{
    connect_mux_pair, Executor, ExsConfig, ExsError, MuxEndpoint, Reactor, ReactorConfig,
    SimDriver, StreamSocket,
};
use rdma_verbs::{HcaConfig, HostModel, NodeApi, NodeApp, SimNet, ThreadNet};
use simnet::{LinkConfig, SimDuration, SimTime};

fn small_cfg() -> ExsConfig {
    ExsConfig {
        ring_capacity: 64 << 10,
        credits: 8,
        sq_depth: 16,
        ..ExsConfig::default()
    }
}

fn two_node_net() -> (SimNet, rdma_verbs::NodeId, rdma_verbs::NodeId) {
    let mut net = SimNet::new();
    let a = net.add_node(HostModel::free(), HcaConfig::default());
    let b = net.add_node(HostModel::free(), HcaConfig::default());
    net.connect_nodes(
        a,
        b,
        LinkConfig::simple(100_000_000_000, SimDuration::from_micros(1)),
        7,
    );
    (net, a, b)
}

fn pattern(round: usize, i: usize) -> u8 {
    (i.wrapping_mul(31) ^ round.wrapping_mul(131)) as u8
}

/// Placeholder app for sim nodes whose traffic is driven elsewhere.
struct Idle;
impl NodeApp for Idle {
    fn on_start(&mut self, _api: &mut NodeApi<'_>) {}
    fn on_wake(&mut self, _api: &mut NodeApi<'_>) {}
    fn is_done(&self) -> bool {
        true
    }
}

/// Wraps a private-CQ socket in its own single-connection executor.
fn solo_executor(sock: StreamSocket) -> (Executor, exs::AsyncStream) {
    let mut reactor = Reactor::new(sock.send_cq(), sock.recv_cq(), ReactorConfig::default());
    let conn = reactor.accept(sock);
    let ex = Executor::new(reactor);
    let stream = ex.handle().stream_with(conn, 4096, 2);
    (ex, stream)
}

const MSG: usize = 2048;
const ROUNDS: usize = 3;

/// Ping-pong echo between two async tasks, one executor per side:
/// `send_all`/`recv_exact` round-trips, explicit `flush`, half-close
/// and clean end-of-stream in both directions.
#[test]
fn sim_async_echo_roundtrip() {
    let (mut net, na, nb) = two_node_net();
    let (sock_a, sock_b) = StreamSocket::pair(&mut net, na, nb, &small_cfg());

    let (server_ex, server_stream) = solo_executor(sock_a);
    server_ex.handle().spawn(async move {
        loop {
            match server_stream.recv_some(MSG).await {
                Ok(bytes) => server_stream
                    .send_all(bytes)
                    .await
                    .expect("echo send failed"),
                Err(ExsError::Eof) => break,
                Err(e) => panic!("server recv failed: {e}"),
            }
        }
        server_stream.shutdown().await.expect("server shutdown");
    });

    let done = Rc::new(RefCell::new(false));
    let done2 = Rc::clone(&done);
    let (client_ex, stream) = solo_executor(sock_b);
    client_ex.handle().spawn(async move {
        for round in 0..ROUNDS {
            let data: Vec<u8> = (0..MSG).map(|i| pattern(round, i)).collect();
            stream.send_all(data).await.expect("client send");
            stream.flush().await.expect("client flush");
            let echo = stream.recv_exact(MSG).await.expect("client recv");
            for (i, &b) in echo.iter().enumerate() {
                assert_eq!(b, pattern(round, i), "echo corrupted at {i}");
            }
        }
        stream.shutdown().await.expect("client shutdown");
        match stream.recv_some(MSG).await {
            Err(ExsError::Eof) => {}
            other => panic!("expected EOF after half-close, got {other:?}"),
        }
        *done2.borrow_mut() = true;
    });

    let mut server = SimDriver::new(server_ex);
    let mut client = SimDriver::new(client_ex);
    let outcome = net.run(&mut [&mut server, &mut client], SimTime::from_secs(10));
    assert!(outcome.completed, "echo stalled: {outcome:?}");
    assert!(*done.borrow(), "client task must run to completion");

    for drv in [&server, &client] {
        let stats = drv.executor_ref().stats();
        assert_eq!(stats.tasks_spawned, 1);
        assert_eq!(stats.tasks_completed, 1);
        assert!(stats.wakeups > 0, "completions must wake the task");
        assert!(
            stats.polls >= stats.wakeups,
            "every wake polls at least once"
        );
    }
    let agg = server
        .executor_ref()
        .with_reactor(|r| r.aggregate_conn_stats());
    assert_eq!(agg.bytes_received, (ROUNDS * MSG) as u64);
    assert_eq!(agg.bytes_sent, (ROUNDS * MSG) as u64);
}

/// `timeout` on a quiet stream fires (and cleanly cancels the parked
/// receive); the same receive, re-issued, completes when the peer's
/// delayed send lands; a generous timeout is cancelled without firing.
#[test]
fn sim_timeout_fires_then_recv_recovers() {
    let (mut net, na, nb) = two_node_net();
    let (sock_a, sock_b) = StreamSocket::pair(&mut net, na, nb, &small_cfg());

    let (server_ex, server_stream) = solo_executor(sock_a);
    let h = server_ex.handle();
    server_ex.handle().spawn(async move {
        // Peer sends at 5 ms; a 1 ms timeout must fire first.
        match timeout(&h, Duration::from_millis(1), server_stream.recv_exact(MSG)).await {
            Err(ExsError::TimedOut) => {}
            other => panic!("expected timeout, got {other:?}"),
        }
        // The cancelled receive left the stream clean: re-issue wins.
        let data = timeout(&h, Duration::from_secs(5), server_stream.recv_exact(MSG))
            .await
            .expect("generous timeout must not fire")
            .expect("delayed payload arrives");
        assert_eq!(data.len(), MSG);
        assert!(data.iter().enumerate().all(|(i, &b)| b == pattern(0, i)));
        match server_stream.recv_some(MSG).await {
            Err(ExsError::Eof) => {}
            other => panic!("expected EOF, got {other:?}"),
        }
        server_stream.shutdown().await.expect("server shutdown");
    });

    let (client_ex, stream) = solo_executor(sock_b);
    let ch = client_ex.handle();
    client_ex.handle().spawn(async move {
        ch.sleep(Duration::from_millis(5)).await;
        let data: Vec<u8> = (0..MSG).map(|i| pattern(0, i)).collect();
        stream.send_all(data).await.expect("client send");
        stream.shutdown().await.expect("client shutdown");
        match stream.recv_some(MSG).await {
            Err(ExsError::Eof) => {}
            other => panic!("expected EOF, got {other:?}"),
        }
    });

    let mut server = SimDriver::new(server_ex);
    let mut client = SimDriver::new(client_ex);
    let outcome = net.run(&mut [&mut server, &mut client], SimTime::from_secs(10));
    assert!(outcome.completed, "timeout scenario stalled: {outcome:?}");

    let stats = server.executor_ref().stats();
    assert!(stats.timer_fires >= 1, "the 1 ms timeout must fire");
    assert!(
        stats.timer_cancels >= 1,
        "the generous timeout must be cancelled, not fired"
    );
    assert!(
        stats.cancels_clean >= 1,
        "the timed-out receive cancels cleanly"
    );
    assert_eq!(
        stats.cancels_poisoned, 0,
        "receive cancellation never poisons"
    );
}

/// `select` across two connections resolves to whichever stream has
/// data — and to the left branch when both are readable (deterministic
/// tie-break). The losing receive cancels cleanly every round.
#[test]
fn sim_select_follows_readiness_with_left_bias() {
    let mut net = SimNet::new();
    let server_node = net.add_node(HostModel::free(), HcaConfig::default());
    let ca = net.add_node(HostModel::free(), HcaConfig::default());
    let cb = net.add_node(HostModel::free(), HcaConfig::default());
    for (i, &c) in [ca, cb].iter().enumerate() {
        net.connect_nodes(
            c,
            server_node,
            LinkConfig::simple(100_000_000_000, SimDuration::from_micros(1)),
            i as u64,
        );
    }
    let cfg = small_cfg();
    let per_conn = cfg.sq_depth * 2 + cfg.credits as usize * 2;
    let (scq, rcq) = net.with_api(server_node, |api| {
        (api.create_cq(per_conn * 2), api.create_cq(per_conn * 2))
    });
    let mut reactor = Reactor::new(scq, rcq, ReactorConfig::default());
    let (sock_ca, ssock_a) = StreamSocket::pair_shared(&mut net, ca, server_node, scq, rcq, &cfg);
    let conn_a = reactor.accept(ssock_a);
    let (sock_cb, ssock_b) = StreamSocket::pair_shared(&mut net, cb, server_node, scq, rcq, &cfg);
    let conn_b = reactor.accept(ssock_b);

    let server_ex = Executor::new(reactor);
    let h = server_ex.handle();
    let order = Rc::new(RefCell::new(Vec::new()));
    let order2 = Rc::clone(&order);
    server_ex.handle().spawn(async move {
        let a = h.stream_with(conn_a, 4096, 2);
        let b = h.stream_with(conn_b, 4096, 2);
        // Client B sends immediately, client A only at 10 ms: the
        // first select must resolve Right.
        match select(a.recv_exact(MSG), b.recv_exact(MSG)).await {
            Either::Right(Ok(bytes)) => {
                assert_eq!(bytes.len(), MSG);
                order2.borrow_mut().push('b');
            }
            other => panic!("expected Right(Ok), got {other:?}"),
        }
        // Wait until both connections have a full message buffered,
        // then select again: ties break left, deterministically.
        h.sleep(Duration::from_millis(20)).await;
        match select(a.recv_exact(MSG), b.recv_exact(MSG)).await {
            Either::Left(Ok(bytes)) => {
                assert_eq!(bytes.len(), MSG);
                order2.borrow_mut().push('a');
            }
            other => panic!("expected Left(Ok), got {other:?}"),
        }
        // Drain B's second message (the tie-break loser keeps its
        // bytes buffered — nothing was lost to the cancelled branch).
        let rest = b.recv_exact(MSG).await.expect("b's buffered message");
        assert_eq!(rest.len(), MSG);
        for s in [&a, &b] {
            match s.recv_some(MSG).await {
                Err(ExsError::Eof) => {}
                other => panic!("expected EOF, got {other:?}"),
            }
            s.shutdown().await.expect("server shutdown");
        }
    });

    // Client A: one message at 10 ms. Client B: one immediately, one
    // at 10 ms (so the tie-break round has data on both streams).
    let (ex_a, stream_a) = solo_executor(sock_ca);
    let ha = ex_a.handle();
    ex_a.handle().spawn(async move {
        ha.sleep(Duration::from_millis(10)).await;
        let data: Vec<u8> = (0..MSG).map(|i| pattern(0, i)).collect();
        stream_a.send_all(data).await.expect("a send");
        stream_a.shutdown().await.expect("a shutdown");
        let _ = stream_a.recv_some(1).await;
    });
    let (ex_b, stream_b) = solo_executor(sock_cb);
    let hb = ex_b.handle();
    ex_b.handle().spawn(async move {
        let data: Vec<u8> = (0..MSG).map(|i| pattern(1, i)).collect();
        stream_b.send_all(data).await.expect("b send");
        hb.sleep(Duration::from_millis(10)).await;
        let data: Vec<u8> = (0..MSG).map(|i| pattern(2, i)).collect();
        stream_b.send_all(data).await.expect("b send 2");
        stream_b.shutdown().await.expect("b shutdown");
        let _ = stream_b.recv_some(1).await;
    });

    let mut server = SimDriver::new(server_ex);
    let mut da = SimDriver::new(ex_a);
    let mut db = SimDriver::new(ex_b);
    let outcome = net.run(&mut [&mut server, &mut da, &mut db], SimTime::from_secs(10));
    assert!(outcome.completed, "select scenario stalled: {outcome:?}");
    assert_eq!(*order.borrow(), vec!['b', 'a']);
    let stats = server.executor_ref().stats();
    // The first select's losing receive parked a waiter and must
    // cancel cleanly. (The tie-break round's loser resolves on the
    // winner's first poll and is dropped before it ever registers —
    // that cancellation is free and uncounted.)
    assert!(
        stats.cancels_clean >= 1,
        "the parked losing receive cancels cleanly"
    );
    assert_eq!(stats.cancels_poisoned, 0);
}

/// Dropping a `send_all` before the executor issues it unwinds
/// completely: the channel is not poisoned, no byte of the cancelled
/// message reaches the peer, and the next send delivers exactly its
/// own bytes.
#[test]
fn sim_unissued_send_cancels_clean_and_stream_stays_usable() {
    let (mut net, na, nb) = two_node_net();
    let (sock_a, sock_b) = StreamSocket::pair(&mut net, na, nb, &small_cfg());

    let got = Rc::new(RefCell::new(Vec::new()));
    let got2 = Rc::clone(&got);
    let (server_ex, server_stream) = solo_executor(sock_a);
    server_ex.handle().spawn(async move {
        loop {
            match server_stream.recv_some(MSG).await {
                Ok(bytes) => got2.borrow_mut().extend(bytes),
                Err(ExsError::Eof) => break,
                Err(e) => panic!("server recv failed: {e}"),
            }
        }
        server_stream.shutdown().await.expect("server shutdown");
    });

    let (client_ex, stream) = solo_executor(sock_b);
    client_ex.handle().spawn(async move {
        // The ready future wins the race on the very first poll, so
        // the send is dropped while still queued — before the executor
        // ever touches the verbs port with it.
        match select(stream.send_all(vec![0xAA; 512]), std::future::ready(())).await {
            Either::Right(()) => {}
            Either::Left(r) => panic!("unpolled send cannot win the select: {r:?}"),
        }
        let data: Vec<u8> = (0..MSG).map(|i| pattern(0, i)).collect();
        stream
            .send_all(data)
            .await
            .expect("channel must not be poisoned by an unissued cancel");
        stream.shutdown().await.expect("client shutdown");
        let _ = stream.recv_some(1).await;
    });

    let mut server = SimDriver::new(server_ex);
    let mut client = SimDriver::new(client_ex);
    let outcome = net.run(&mut [&mut server, &mut client], SimTime::from_secs(10));
    assert!(outcome.completed, "cancel scenario stalled: {outcome:?}");

    let got = got.borrow();
    assert_eq!(got.len(), MSG, "exactly one message delivered");
    assert!(
        got.iter().enumerate().all(|(i, &b)| b == pattern(0, i)),
        "no byte of the cancelled message reached the peer"
    );
    let stats = client.executor_ref().stats();
    assert!(stats.cancels_clean >= 1, "the queued send unwinds cleanly");
    assert_eq!(stats.cancels_poisoned, 0);
}

/// The `try_*` reactor accessors turn recycled/removed ids into
/// `None`/`Err(Stale)` instead of panicking, and an `AsyncStream`
/// whose connection was removed fails its operations with
/// [`ExsError::Stale`].
#[test]
fn stale_ids_error_instead_of_panicking() {
    let (mut net, na, nb) = two_node_net();
    let (sock_a, _sock_b) = StreamSocket::pair(&mut net, na, nb, &small_cfg());

    let mut reactor = Reactor::new(sock_a.send_cq(), sock_a.recv_cq(), ReactorConfig::default());
    let conn = reactor.accept(sock_a);
    assert!(reactor.try_conn(conn).is_some());
    assert!(reactor.try_take_events(conn).is_ok());
    assert!(reactor.try_mux(exs::MuxId(0)).is_none(), "no mux hosted");
    assert!(reactor.try_take_mux_events(exs::MuxId(3)).is_err());

    let ex = Executor::new(reactor);
    let stream = ex.handle().stream_with(conn, 4096, 2);
    let removed = ex.with_reactor(|r| {
        let sock = r.remove(conn);
        assert!(r.try_conn(conn).is_none(), "removed id is stale");
        assert!(matches!(r.try_take_events(conn), Err(ExsError::Stale)));
        sock
    });
    drop(removed);

    let verdict = Rc::new(RefCell::new(None));
    let verdict2 = Rc::clone(&verdict);
    ex.handle().spawn(async move {
        *verdict2.borrow_mut() = Some(stream.recv_exact(16).await);
    });
    let mut server = SimDriver::new(ex);
    let mut idle = Idle;
    let outcome = net.run(&mut [&mut server, &mut idle], SimTime::from_secs(1));
    assert!(outcome.completed, "stale scenario stalled: {outcome:?}");
    assert_eq!(
        *verdict.borrow(),
        Some(Err(ExsError::Stale)),
        "operations on a removed connection fail typed, not by panic"
    );
}

/// Async streams over a hosted [`MuxEndpoint`]: per-stream tasks
/// receive interleaved multiplexed traffic, `accept` surfaces each
/// stream exactly once on first activity, and `StreamClosed` becomes
/// a clean EOF.
#[test]
fn sim_mux_streams_accept_and_deliver() {
    const STREAMS: u32 = 3;
    let (mut net, na, nb) = two_node_net();
    let cfg = ExsConfig::default();
    let mut a = MuxEndpoint::new(na, &cfg);
    let mut b = MuxEndpoint::new(nb, &cfg);
    for id in 0..STREAMS {
        a.open_stream(id).unwrap();
        b.open_stream(id).unwrap();
    }
    let depth = MuxEndpoint::shared_cq_depth(&cfg);
    let (scq, rcq) = net.with_api(nb, |api| (api.create_cq(depth), api.create_cq(depth)));
    b.set_cqs(scq, rcq);
    connect_mux_pair(&mut net, &mut a, &mut b);

    let total = |s: u32| 600 + s as usize * 137;
    let payload = |s: u32, i: usize| (s as usize * 97 + i * 31) as u8;

    // Sender: callback-driven endpoint posting one message per stream,
    // then closing each stream once its send completes.
    struct MuxSender {
        ep: Option<MuxEndpoint>,
        mrs: Vec<rdma_verbs::MrInfo>,
        sent: Vec<bool>,
        closed: Vec<bool>,
    }
    impl NodeApp for MuxSender {
        fn on_start(&mut self, api: &mut NodeApi<'_>) {
            let ep = self.ep.as_mut().unwrap();
            for s in 0..self.mrs.len() as u32 {
                ep.mux_send(
                    api,
                    s,
                    &self.mrs[s as usize],
                    0,
                    (600 + s as usize * 137) as u64,
                    s as u64,
                )
                .unwrap();
            }
        }
        fn on_wake(&mut self, api: &mut NodeApi<'_>) {
            let ep = self.ep.as_mut().unwrap();
            ep.handle_wake(api);
            for ev in ep.take_events() {
                if let exs::MuxEvent::SendComplete { stream, .. } = ev {
                    self.sent[stream as usize] = true;
                }
            }
            for s in 0..self.sent.len() {
                if self.sent[s] && !self.closed[s] {
                    ep.close_stream(api, s as u32);
                    self.closed[s] = true;
                }
            }
        }
        fn is_done(&self) -> bool {
            self.closed.iter().all(|&c| c) && self.ep.as_ref().unwrap().sends_drained()
        }
    }

    let mrs: Vec<rdma_verbs::MrInfo> = (0..STREAMS)
        .map(|s| {
            net.with_api(na, |api| {
                let mr = api.register_mr(total(s), rdma_verbs::Access::NONE);
                let data: Vec<u8> = (0..total(s)).map(|i| payload(s, i)).collect();
                api.write_mr(mr.key, mr.addr, &data).unwrap();
                mr
            })
        })
        .collect();
    let mut sender = MuxSender {
        ep: Some(a),
        mrs,
        sent: vec![false; STREAMS as usize],
        closed: vec![false; STREAMS as usize],
    };

    // Receiver: the endpoint hosted in a reactor, one async task per
    // stream plus an accept task observing first-activity order.
    let mut reactor = Reactor::new(scq, rcq, ReactorConfig::default());
    let mid = reactor.accept_mux(b);
    let ex = Executor::new(reactor);
    let amux = ex.handle().mux(mid);
    let accepted = Rc::new(RefCell::new(Vec::new()));
    let acc2 = Rc::clone(&accepted);
    let amux2 = amux.clone();
    ex.handle().spawn(async move {
        for _ in 0..STREAMS {
            let sid = amux2.accept().await.expect("accept");
            acc2.borrow_mut().push(sid);
        }
    });
    for sid in 0..STREAMS {
        let stream = amux.stream(sid);
        ex.handle().spawn(async move {
            let data = stream.recv_exact(total(sid)).await.expect("stream bytes");
            for (i, &byte) in data.iter().enumerate() {
                assert_eq!(byte, payload(sid, i), "stream {sid} corrupted at {i}");
            }
            match stream.recv_some(64).await {
                Err(ExsError::Eof) => {}
                other => panic!("stream {sid} expected EOF, got {other:?}"),
            }
        });
    }

    let mut recv_drv = SimDriver::new(ex);
    let outcome = net.run(&mut [&mut sender, &mut recv_drv], SimTime::from_secs(10));
    assert!(outcome.completed, "mux scenario stalled: {outcome:?}");
    let mut seen = accepted.borrow().clone();
    seen.sort_unstable();
    assert_eq!(seen, vec![0, 1, 2], "each stream accepted exactly once");
    let stats = recv_drv.executor_ref().stats();
    assert_eq!(stats.tasks_completed, STREAMS as u64 + 1);
}

/// The identical task code on the real-thread backend: a shared-CQ
/// server executor echoing four connections from four client threads,
/// each with its own parked executor, plus a thread-backend timeout.
#[test]
fn threaded_async_echo_roundtrip() {
    const CONNS: usize = 4;
    let cfg = small_cfg();
    let mut net = ThreadNet::new();
    let server_node = net.add_node(HcaConfig::default());
    let client_nodes: Vec<_> = (0..CONNS)
        .map(|_| net.add_node(HcaConfig::default()))
        .collect();
    for c in &client_nodes {
        net.connect_nodes(c, &server_node, Duration::from_micros(20));
    }
    let per_conn = cfg.sq_depth * 2 + cfg.credits as usize * 2;
    let (scq, rcq) =
        server_node.with_hca(|h| (h.create_cq(per_conn * CONNS), h.create_cq(per_conn * CONNS)));
    let mut reactor = Reactor::new(scq, rcq, ReactorConfig::default());
    let mut client_socks = Vec::new();
    for c in &client_nodes {
        let (ssock, csock) = connect_sockets_shared(&server_node, c, &cfg, Some((scq, rcq)), None);
        reactor.accept(ssock);
        client_socks.push(csock);
    }
    let net = Arc::new(net);

    let server = {
        let net = Arc::clone(&net);
        let server_node = Arc::clone(&server_node);
        std::thread::spawn(move || {
            let conns = ex_conns(&reactor);
            let mut ex = Executor::new(reactor);
            for conn in conns {
                let stream = ex.handle().stream_with(conn, 4096, 2);
                ex.handle().spawn(async move {
                    loop {
                        match stream.recv_some(MSG).await {
                            Ok(bytes) => stream.send_all(bytes).await.expect("echo send"),
                            Err(ExsError::Eof) => break,
                            Err(e) => panic!("server recv failed: {e}"),
                        }
                    }
                    stream.shutdown().await.expect("server shutdown");
                });
            }
            ex.run_threaded(&net, &server_node);
            ex.stats()
        })
    };

    let mut clients = Vec::new();
    for (idx, (csock, cnode)) in client_socks
        .into_iter()
        .zip(client_nodes.iter().cloned())
        .enumerate()
    {
        let net = Arc::clone(&net);
        clients.push(std::thread::spawn(move || {
            let (mut ex, stream) = solo_executor(csock);
            let h = ex.handle();
            ex.handle().spawn(async move {
                for round in 0..ROUNDS {
                    let data: Vec<u8> = (0..MSG).map(|i| pattern(idx + round, i)).collect();
                    stream.send_all(data).await.expect("client send");
                    let echo = stream.recv_exact(MSG).await.expect("client recv");
                    for (i, &b) in echo.iter().enumerate() {
                        assert_eq!(b, pattern(idx + round, i), "client {idx} echo at {i}");
                    }
                }
                // Nothing else is inbound: a short timeout must fire
                // on the real-thread timer path too.
                match timeout(&h, Duration::from_millis(5), stream.recv_exact(1)).await {
                    Err(ExsError::TimedOut) => {}
                    other => panic!("client {idx} expected timeout, got {other:?}"),
                }
                stream.shutdown().await.expect("client shutdown");
                match stream.recv_some(MSG).await {
                    Err(ExsError::Eof) => {}
                    other => panic!("client {idx} expected EOF, got {other:?}"),
                }
            });
            ex.run_threaded(&net, &cnode);
            ex.stats()
        }));
    }

    for c in clients {
        let stats = c.join().expect("client thread");
        assert_eq!(stats.tasks_completed, 1);
        assert!(stats.timer_fires >= 1, "thread-backend timeout fired");
    }
    let server_stats = server.join().expect("server thread");
    assert_eq!(server_stats.tasks_completed, CONNS as u64);
    net.quiesce();
}

/// The reactor's connection ids, pulled out before the executor takes
/// ownership.
fn ex_conns(reactor: &Reactor) -> Vec<exs::ConnId> {
    reactor.conn_ids()
}
