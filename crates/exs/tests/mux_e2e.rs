//! Shared-transport multiplexing over the **threaded** backend: real
//! OS threads deliver the fabric traffic, so these runs exercise the
//! same [`MuxEndpoint`] state machines under genuine asynchrony —
//! completions race the driver instead of arriving at deterministic
//! virtual times.

use std::sync::Arc;
use std::time::{Duration, Instant};

use exs::threaded::connect_mux_over;
use exs::{ExsConfig, MuxEndpoint, MuxEvent, ThreadPort, VerbsPort};
use rdma_verbs::{Access, HcaConfig, MrInfo};
use rdma_verbs::{ThreadNet, ThreadNode};

fn small_cfg() -> ExsConfig {
    ExsConfig {
        ring_capacity: 4096,
        credits: 16,
        sq_depth: 64,
        ..ExsConfig::default()
    }
}

fn fnv1a(acc: u64, bytes: &[u8]) -> u64 {
    let mut h = acc;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Polls both endpoints until `done` holds over their accumulated
/// events, with a wall-clock deadline against livelock.
fn drive(
    net: &ThreadNet,
    a: (&Arc<ThreadNode>, &mut MuxEndpoint),
    b: (&Arc<ThreadNode>, &mut MuxEndpoint),
    done: impl Fn(&[MuxEvent], &[MuxEvent]) -> bool,
) -> (Vec<MuxEvent>, Vec<MuxEvent>) {
    let (an, ep_a) = a;
    let (bn, ep_b) = b;
    let deadline = Instant::now() + Duration::from_secs(20);
    let (mut ev_a, mut ev_b) = (Vec::new(), Vec::new());
    loop {
        {
            let mut port = ThreadPort::new(net, an);
            ep_a.handle_wake(&mut port);
            ev_a.extend(ep_a.take_events());
        }
        {
            let mut port = ThreadPort::new(net, bn);
            ep_b.handle_wake(&mut port);
            ev_b.extend(ep_b.take_events());
        }
        if done(&ev_a, &ev_b) {
            return (ev_a, ev_b);
        }
        assert!(
            Instant::now() < deadline,
            "threaded mux run stalled: a={ev_a:?} b={ev_b:?}"
        );
        std::thread::sleep(Duration::from_micros(200));
    }
}

fn recvs_done(evs: &[MuxEvent]) -> usize {
    evs.iter()
        .filter(|e| matches!(e, MuxEvent::RecvComplete { .. }))
        .count()
}

fn sends_done(evs: &[MuxEvent]) -> usize {
    evs.iter()
        .filter(|e| matches!(e, MuxEvent::SendComplete { .. }))
        .count()
}

#[test]
fn threaded_interleaved_streams_share_one_pool_without_crosstalk() {
    const STREAMS: u32 = 8;
    let cfg = small_cfg();
    let mut net = ThreadNet::new();
    let na = net.add_node(HcaConfig::default());
    let nb = net.add_node(HcaConfig::default());
    net.connect_nodes(&na, &nb, Duration::from_micros(50));

    let mut a = MuxEndpoint::new(na.id(), &cfg);
    let mut b = MuxEndpoint::new(nb.id(), &cfg);
    for id in 0..STREAMS {
        a.open_stream(id).unwrap();
        b.open_stream(id).unwrap();
    }
    connect_mux_over(&net, (&na, &mut a), (&nb, &mut b));
    assert_eq!(a.transports_active(), cfg.mux.qp_pool_size);
    assert_eq!(b.transports_active(), cfg.mux.qp_pool_size);

    // Per-stream payloads of different sizes, sent in several chunks so
    // arrivals from all streams interleave on the shared QPs.
    let total = |stream: u32| 600 + (stream as usize) * 137;
    let payload = |stream: u32, i: usize| ((stream as usize * 61 + i * 13) % 249) as u8;
    let send_mrs: Vec<MrInfo> = (0..STREAMS)
        .map(|id| {
            let mut port = ThreadPort::new(&net, &na);
            let mr = port.register_mr(total(id), Access::NONE);
            let data: Vec<u8> = (0..total(id)).map(|i| payload(id, i)).collect();
            port.write_mr(mr.key, mr.addr, &data).unwrap();
            mr
        })
        .collect();
    let recv_mrs: Vec<MrInfo> = (0..STREAMS)
        .map(|id| {
            let mut port = ThreadPort::new(&net, &nb);
            port.register_mr(total(id), Access::local_remote_write())
        })
        .collect();
    {
        let mut port = ThreadPort::new(&net, &nb);
        for id in 0..STREAMS {
            b.mux_recv(
                &mut port,
                id,
                &recv_mrs[id as usize],
                0,
                total(id) as u32,
                true,
                id as u64,
            )
            .unwrap();
        }
    }
    {
        // Chunked round-robin posting: stream 0 chunk 0, stream 1
        // chunk 0, ..., stream 0 chunk 1, ... — maximal interleave.
        let mut port = ThreadPort::new(&net, &na);
        let chunks = 3usize;
        for c in 0..chunks {
            for id in 0..STREAMS {
                let len = total(id);
                let lo = len * c / chunks;
                let hi = len * (c + 1) / chunks;
                a.mux_send(
                    &mut port,
                    id,
                    &send_mrs[id as usize],
                    lo as u64,
                    (hi - lo) as u64,
                    (c * STREAMS as usize + id as usize) as u64,
                )
                .unwrap();
            }
        }
    }

    let want_sends = 3 * STREAMS as usize;
    drive(&net, (&na, &mut a), (&nb, &mut b), |ea, eb| {
        sends_done(ea) == want_sends && recvs_done(eb) == STREAMS as usize
    });

    // Byte identity per stream: no cross-delivery, no reordering.
    let port = ThreadPort::new(&net, &nb);
    for id in 0..STREAMS {
        let mr = &recv_mrs[id as usize];
        let mut buf = vec![0u8; total(id)];
        port.read_mr(mr.key, mr.addr, &mut buf).unwrap();
        let want: Vec<u8> = (0..total(id)).map(|i| payload(id, i)).collect();
        assert_eq!(
            fnv1a(0xcbf2_9ce4_8422_2325, &buf),
            fnv1a(0xcbf2_9ce4_8422_2325, &want),
            "stream {id} corrupted under the threaded backend"
        );
    }
    assert_eq!(a.stats().protocol_errors, 0);
    assert_eq!(b.stats().protocol_errors, 0);
    assert_eq!(b.stats().mux_demux_errors, 0);
    assert!(a.last_error().is_none() && b.last_error().is_none());

    net.quiesce();
    {
        let mut port = ThreadPort::new(&net, &na);
        a.close(&mut port);
    }
    let mut port = ThreadPort::new(&net, &nb);
    b.close(&mut port);
}

#[test]
fn threaded_close_stream_releases_state_and_siblings_survive() {
    let cfg = small_cfg();
    let mut net = ThreadNet::new();
    let na = net.add_node(HcaConfig::default());
    let nb = net.add_node(HcaConfig::default());
    net.connect_nodes(&na, &nb, Duration::from_micros(50));

    let mut a = MuxEndpoint::new(na.id(), &cfg);
    let mut b = MuxEndpoint::new(nb.id(), &cfg);
    for id in 0..3 {
        a.open_stream(id).unwrap();
        b.open_stream(id).unwrap();
    }
    connect_mux_over(&net, (&na, &mut a), (&nb, &mut b));
    let footprint_3 = a.memory_footprint();

    // Close stream 0 in both directions; the FIN exchange retires it.
    {
        let mut port = ThreadPort::new(&net, &na);
        a.close_stream(&mut port, 0);
    }
    {
        let mut port = ThreadPort::new(&net, &nb);
        b.close_stream(&mut port, 0);
    }
    drive(&net, (&na, &mut a), (&nb, &mut b), |ea, eb| {
        ea.contains(&MuxEvent::StreamClosed { stream: 0 })
            && eb.contains(&MuxEvent::StreamClosed { stream: 0 })
    });
    assert_eq!(a.streams_open(), 2);
    assert_eq!(b.streams_open(), 2);
    let per_stream = footprint_3 - a.memory_footprint();
    assert!(
        per_stream > 0,
        "closing a stream must release its per-stream state"
    );
    assert!(
        per_stream < 1024,
        "per-stream state should be cache-friendly, got {per_stream} bytes"
    );

    // A sibling still moves data through the shared pool.
    const MSG: usize = 900;
    let smr = {
        let mut port = ThreadPort::new(&net, &na);
        let mr = port.register_mr(MSG, Access::NONE);
        port.write_mr(mr.key, mr.addr, &vec![0xA7; MSG]).unwrap();
        mr
    };
    let rmr = {
        let mut port = ThreadPort::new(&net, &nb);
        port.register_mr(MSG, Access::local_remote_write())
    };
    {
        let mut port = ThreadPort::new(&net, &nb);
        b.mux_recv(&mut port, 2, &rmr, 0, MSG as u32, true, 40)
            .unwrap();
    }
    {
        let mut port = ThreadPort::new(&net, &na);
        a.mux_send(&mut port, 2, &smr, 0, MSG as u64, 40).unwrap();
    }
    let (_, ev_b) = drive(&net, (&na, &mut a), (&nb, &mut b), |_, eb| {
        recvs_done(eb) == 1
    });
    assert!(ev_b.contains(&MuxEvent::RecvComplete {
        stream: 2,
        id: 40,
        len: MSG as u32
    }));
    let port = ThreadPort::new(&net, &nb);
    let mut buf = vec![0u8; MSG];
    port.read_mr(rmr.key, rmr.addr, &mut buf).unwrap();
    assert!(buf.iter().all(|&x| x == 0xA7), "sibling payload corrupted");
    net.quiesce();
}
