//! End-to-end tests for the iWARP WWI emulation (paper §II-B): every
//! transfer becomes an RDMA WRITE followed by a small notification SEND,
//! and the stream must behave byte-for-byte identically to native WWI.

use exs::{ExsConfig, ExsEvent, ProtocolMode, StreamSocket, WwiMode};
use rdma_verbs::profiles::{fdr_infiniband, ideal};
use rdma_verbs::{Access, MrInfo, NodeApi, NodeApp, SimNet};
use simnet::SimTime;

fn pattern(i: u64) -> u8 {
    (i.wrapping_mul(97).wrapping_add(13)) as u8
}

struct Tx {
    sock: Option<StreamSocket>,
    mr: Option<MrInfo>,
    msgs: Vec<u64>,
    next: usize,
    acked: usize,
    pos: u64,
}

impl NodeApp for Tx {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        let mr = self.mr.unwrap();
        let mut off = 0u64;
        for (i, &len) in self.msgs.iter().enumerate() {
            let data: Vec<u8> = (0..len).map(|j| pattern(self.pos + j)).collect();
            api.write_mr(mr.key, mr.addr + off, &data).unwrap();
            self.sock
                .as_mut()
                .unwrap()
                .exs_send(api, &mr, off, len, i as u64);
            self.pos += len;
            off += len;
            self.next += 1;
        }
    }
    fn on_wake(&mut self, api: &mut NodeApi<'_>) {
        self.sock.as_mut().unwrap().handle_wake(api);
        for ev in self.sock.as_mut().unwrap().take_events() {
            if matches!(ev, ExsEvent::SendComplete { .. }) {
                self.acked += 1;
            }
        }
    }
    fn is_done(&self) -> bool {
        self.acked == self.msgs.len()
    }
}

struct Rx {
    sock: Option<StreamSocket>,
    mr: Option<MrInfo>,
    recv_len: u32,
    expected: u64,
    received: u64,
    next_id: u64,
}

impl Rx {
    fn pump(&mut self, api: &mut NodeApi<'_>) {
        loop {
            let events = self.sock.as_mut().unwrap().take_events();
            let mut progressed = false;
            for ev in events {
                if let ExsEvent::RecvComplete { len, .. } = ev {
                    let mr = self.mr.unwrap();
                    let mut buf = vec![0u8; len as usize];
                    api.read_mr(mr.key, mr.addr, &mut buf).unwrap();
                    for (i, &b) in buf.iter().enumerate() {
                        assert_eq!(
                            b,
                            pattern(self.received + i as u64),
                            "corruption at {}",
                            self.received + i as u64
                        );
                    }
                    self.received += len as u64;
                    progressed = true;
                }
            }
            if self.received < self.expected && self.sock.as_ref().unwrap().recvs_pending() == 0 {
                let mr = self.mr.unwrap();
                self.sock.as_mut().unwrap().exs_recv(
                    api,
                    &mr,
                    0,
                    self.recv_len,
                    false,
                    self.next_id,
                );
                self.next_id += 1;
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
    }
}

impl NodeApp for Rx {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        self.pump(api);
    }
    fn on_wake(&mut self, api: &mut NodeApi<'_>) {
        self.sock.as_mut().unwrap().handle_wake(api);
        self.pump(api);
    }
    fn is_done(&self) -> bool {
        self.received >= self.expected
    }
}

fn run(
    profile: rdma_verbs::HwProfile,
    wwi_mode: WwiMode,
    mode: ProtocolMode,
    msgs: Vec<u64>,
) -> (Tx, Rx, SimNet) {
    let total: u64 = msgs.iter().sum();
    let mut net = SimNet::new();
    let a = net.add_node(profile.host.clone(), profile.hca.clone());
    let b = net.add_node(profile.host.clone(), profile.hca.clone());
    net.connect_nodes(a, b, profile.link.clone(), 4);
    let cfg = ExsConfig {
        wwi_mode,
        ..ExsConfig::with_mode(mode)
    };
    let (sa, sb) = StreamSocket::pair(&mut net, a, b, &cfg);
    let mut tx = Tx {
        sock: Some(sa),
        mr: None,
        msgs,
        next: 0,
        acked: 0,
        pos: 0,
    };
    let mut rx = Rx {
        sock: Some(sb),
        mr: None,
        recv_len: 8192,
        expected: total,
        received: 0,
        next_id: 0,
    };
    net.with_api(a, |api| {
        tx.mr = Some(api.register_mr(total as usize, Access::NONE));
    });
    net.with_api(b, |api| {
        rx.mr = Some(api.register_mr(8192, Access::local_remote_write()));
    });
    let outcome = net.run(&mut [&mut tx, &mut rx], SimTime::from_secs(30));
    assert!(
        outcome.completed,
        "run stalled: acked {}/{} received {}/{}",
        tx.acked,
        tx.msgs.len(),
        rx.received,
        total
    );
    (tx, rx, net)
}

#[test]
fn emulated_wwi_delivers_identically_in_all_modes() {
    let msgs = vec![100, 5000, 1, 9000, 4096, 777];
    for mode in [
        ProtocolMode::Dynamic,
        ProtocolMode::DirectOnly,
        ProtocolMode::IndirectOnly,
    ] {
        let (_, rx_native, _) = run(ideal(), WwiMode::Native, mode, msgs.clone());
        let (_, rx_emulated, _) = run(ideal(), WwiMode::WritePlusSend, mode, msgs.clone());
        assert_eq!(rx_native.received, rx_emulated.received, "mode {mode:?}");
        assert_eq!(rx_emulated.received, msgs.iter().sum::<u64>());
    }
}

#[test]
fn emulation_costs_extra_wire_messages() {
    let msgs = vec![4096; 20];
    let (tx_n, _, net_n) = run(
        fdr_infiniband(),
        WwiMode::Native,
        ProtocolMode::Dynamic,
        msgs.clone(),
    );
    let (tx_e, _, net_e) = run(
        fdr_infiniband(),
        WwiMode::WritePlusSend,
        ProtocolMode::Dynamic,
        msgs,
    );
    let st_n = tx_n.sock.as_ref().unwrap().stats();
    let st_e = tx_e.sock.as_ref().unwrap().stats();
    assert_eq!(
        st_n.total_transfers(),
        st_e.total_transfers(),
        "same data transfers"
    );
    // The emulation must take at least as long: one extra WQE + wire
    // message per transfer.
    assert!(net_e.now() >= net_n.now(), "emulation cannot be faster");
}

#[test]
fn emulated_wwi_with_tiny_ring_flow_control() {
    let cfg_msgs = vec![30_000; 10];
    let profile = ideal();
    let total: u64 = cfg_msgs.iter().sum();
    let mut net = SimNet::new();
    let a = net.add_node(profile.host.clone(), profile.hca.clone());
    let b = net.add_node(profile.host.clone(), profile.hca.clone());
    net.connect_nodes(a, b, profile.link.clone(), 5);
    let cfg = ExsConfig {
        wwi_mode: WwiMode::WritePlusSend,
        ring_capacity: 4096,
        ..ExsConfig::with_mode(ProtocolMode::IndirectOnly)
    };
    let (sa, sb) = StreamSocket::pair(&mut net, a, b, &cfg);
    let mut tx = Tx {
        sock: Some(sa),
        mr: None,
        msgs: cfg_msgs,
        next: 0,
        acked: 0,
        pos: 0,
    };
    let mut rx = Rx {
        sock: Some(sb),
        mr: None,
        recv_len: 8192,
        expected: total,
        received: 0,
        next_id: 0,
    };
    net.with_api(a, |api| {
        tx.mr = Some(api.register_mr(total as usize, Access::NONE));
    });
    net.with_api(b, |api| {
        rx.mr = Some(api.register_mr(8192, Access::local_remote_write()));
    });
    let outcome = net.run(&mut [&mut tx, &mut rx], SimTime::from_secs(30));
    assert!(outcome.completed);
    assert_eq!(rx.received, total);
}
