//! Property test for the SOCK_SEQPACKET mode: arbitrary message trains
//! preserve boundaries, order and payloads end to end, with oversized
//! messages rejected deterministically.

use proptest::prelude::*;

use exs::{ExsConfig, SeqPacketEvent, SeqPacketSocket};
use rdma_verbs::profiles::ideal;
use rdma_verbs::{Access, MrInfo, NodeApi, NodeApp, SimNet};
use simnet::SimTime;

struct Tx {
    sock: Option<SeqPacketSocket>,
    mr: Option<MrInfo>,
    msgs: Vec<u32>,
    events: Vec<SeqPacketEvent>,
}

impl NodeApp for Tx {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        let mr = self.mr.unwrap();
        for (i, &len) in self.msgs.iter().enumerate() {
            let data: Vec<u8> = (0..len).map(|j| (i as u8) ^ (j as u8)).collect();
            api.write_mr(mr.key, mr.addr, &data).unwrap();
            self.sock
                .as_mut()
                .unwrap()
                .exs_send(api, &mr, 0, len, i as u64);
        }
    }
    fn on_wake(&mut self, api: &mut NodeApi<'_>) {
        self.sock.as_mut().unwrap().handle_wake(api);
        self.events
            .extend(self.sock.as_mut().unwrap().take_events());
    }
    fn is_done(&self) -> bool {
        self.events.len() == self.msgs.len()
    }
}

struct Rx {
    sock: Option<SeqPacketSocket>,
    recv_len: u32,
    /// Receives to post (one per sent message, so every message meets an
    /// ADVERT to match or be rejected against).
    post: usize,
    /// Completions to expect (messages that fit).
    expect: usize,
    received: Vec<(u64, u32)>,
    posted: usize,
}

impl NodeApp for Rx {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        while self.posted < self.post {
            let mr = api.register_mr(self.recv_len as usize, Access::local_remote_write());
            self.sock
                .as_mut()
                .unwrap()
                .exs_recv(api, &mr, 0, self.recv_len, self.posted as u64);
            self.posted += 1;
        }
    }
    fn on_wake(&mut self, api: &mut NodeApi<'_>) {
        self.sock.as_mut().unwrap().handle_wake(api);
        for ev in self.sock.as_mut().unwrap().take_events() {
            if let SeqPacketEvent::RecvComplete { id, len } = ev {
                self.received.push((id, len));
            }
        }
    }
    fn is_done(&self) -> bool {
        self.received.len() >= self.expect
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn message_trains_preserve_boundaries(
        msgs in proptest::collection::vec(1u32..5000, 1..30),
        recv_len in 1u32..5000,
    ) {
        let profile = ideal();
        let mut net = SimNet::new();
        let a = net.add_node(profile.host.clone(), profile.hca.clone());
        let b = net.add_node(profile.host.clone(), profile.hca.clone());
        net.connect_nodes(a, b, profile.link.clone(), 15);
        let (sa, sb) = SeqPacketSocket::pair(&mut net, a, b, &ExsConfig::default());

        let fitting: Vec<u32> = msgs.iter().copied().filter(|&m| m <= recv_len).collect();
        let max = msgs.iter().copied().max().unwrap_or(1) as usize;
        let mut tx = Tx {
            sock: Some(sa),
            mr: None,
            msgs: msgs.clone(),
            events: Vec::new(),
        };
        let mut rx = Rx {
            sock: Some(sb),
            recv_len,
            post: msgs.len(),
            expect: fitting.len(),
            received: Vec::new(),
            posted: 0,
        };
        net.with_api(a, |api| {
            tx.mr = Some(api.register_mr(max, Access::NONE));
        });
        let outcome = net.run(&mut [&mut tx, &mut rx], SimTime::from_secs(10));
        prop_assert!(outcome.completed, "stalled: {outcome:?}");

        // Every fitting message arrives, in order, with its exact length.
        prop_assert_eq!(rx.received.len(), fitting.len());
        for (got, want) in rx.received.iter().zip(&fitting) {
            prop_assert_eq!(got.1, *want);
        }
        // Every oversized message produced a SendError naming the sizes.
        let errors = tx
            .events
            .iter()
            .filter(|e| matches!(e, SeqPacketEvent::SendError { .. }))
            .count();
        prop_assert_eq!(errors, msgs.len() - fitting.len());
    }
}
