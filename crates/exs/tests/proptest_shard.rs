//! Property tests for the sharded reactor pool.
//!
//! Under randomized pool shapes — shard counts, placement policies,
//! connection counts, message sizes, receive-split sizes and host
//! jitter seeds — the pool must behave exactly like N independent
//! reactors behind a router:
//!
//! * every stream's bytes arrive **in order** (pattern-verified on
//!   every delivered byte) and nothing is dropped or duplicated,
//!   regardless of which shard the policy picked;
//! * a connection's traffic only ever surfaces on the shard it was
//!   assigned to at accept (readiness for a foreign handle would be a
//!   routing bug);
//! * placement accounting stays consistent: assignments sum to the
//!   accept count and every handle's shard is in range;
//! * merged statistics equal the sum of the per-shard rows.

use std::collections::{HashMap, HashSet};

use proptest::prelude::*;

use exs::{
    ExsConfig, ExsEvent, Reactor, ReactorConfig, ReactorPool, ShardConfig, ShardHandle,
    ShardPolicy, StreamSocket,
};
use rdma_verbs::{profiles, Access, MrInfo, NodeApi, NodeApp, NodeId, SimNet};
use simnet::SimTime;

fn pattern(seed: u64, conn: usize, off: u64) -> u8 {
    off.wrapping_mul(31)
        .wrapping_add(conn as u64 * 7)
        .wrapping_add(seed) as u8
}

struct PropClient {
    sock: StreamSocket,
    idx: usize,
    slots: Vec<MrInfo>,
    free: Vec<usize>,
    slot_of: HashMap<u64, usize>,
    sent: usize,
    acked: usize,
    pos: u64,
    shutdown: bool,
    msgs: usize,
    msg_len: u64,
    seed: u64,
}

impl PropClient {
    fn kick(&mut self, api: &mut NodeApi<'_>) {
        while self.sent < self.msgs {
            let Some(slot) = self.free.pop() else { break };
            let mr = self.slots[slot];
            let data: Vec<u8> = (0..self.msg_len)
                .map(|i| pattern(self.seed, self.idx, self.pos + i))
                .collect();
            api.write_mr(mr.key, mr.addr, &data).unwrap();
            self.slot_of.insert(self.sent as u64, slot);
            self.sock
                .exs_send(api, &mr, 0, self.msg_len, self.sent as u64);
            self.pos += self.msg_len;
            self.sent += 1;
        }
        if self.sent == self.msgs && self.acked == self.msgs && !self.shutdown {
            self.sock.exs_shutdown(api);
            self.shutdown = true;
        }
    }
}

impl NodeApp for PropClient {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        self.kick(api);
    }
    fn on_wake(&mut self, api: &mut NodeApi<'_>) {
        self.sock.handle_wake(api);
        for ev in self.sock.take_events() {
            if let ExsEvent::SendComplete { id, .. } = ev {
                self.free.push(self.slot_of.remove(&id).expect("send slot"));
                self.acked += 1;
            }
        }
        self.kick(api);
    }
    fn is_done(&self) -> bool {
        self.shutdown
    }
}

struct PropPoolServer {
    pool: ReactorPool,
    /// Global connection index → pool handle.
    handles: Vec<ShardHandle>,
    /// Pool handle → global connection index.
    idx_of: HashMap<ShardHandle, usize>,
    mrs: Vec<MrInfo>,
    recv_len: u32,
    expected: u64,
    received: Vec<u64>,
    eof: Vec<bool>,
    outstanding: Vec<bool>,
    seen_recv_ids: HashSet<u64>,
    posted_recvs: u64,
    completed_recvs: u64,
    seed: u64,
    next_id: u64,
    ready: Vec<(ShardHandle, exs::Readiness)>,
}

impl PropPoolServer {
    fn handle_conn(&mut self, api: &mut NodeApi<'_>, idx: usize) -> bool {
        let h = self.handles[idx];
        let events = self.pool.shard_mut(h.shard).take_events(h.conn);
        let mut progressed = !events.is_empty();
        for ev in events {
            match ev {
                ExsEvent::RecvComplete { id, len } => {
                    assert!(
                        self.seen_recv_ids.insert(id),
                        "receive {id} completed twice on conn {idx}"
                    );
                    assert!(self.outstanding[idx], "completion without a posted recv");
                    self.outstanding[idx] = false;
                    self.completed_recvs += 1;
                    if len > 0 {
                        let mr = self.mrs[idx];
                        let mut buf = vec![0u8; len as usize];
                        api.read_mr(mr.key, mr.addr, &mut buf).unwrap();
                        for (i, &b) in buf.iter().enumerate() {
                            assert_eq!(
                                b,
                                pattern(self.seed, idx, self.received[idx] + i as u64),
                                "conn {idx} (shard {}) out of order at {}",
                                h.shard,
                                self.received[idx] + i as u64
                            );
                        }
                        self.received[idx] += len as u64;
                    }
                }
                ExsEvent::PeerClosed => self.eof[idx] = true,
                ExsEvent::ConnectionError => panic!("conn {idx} broke"),
                ExsEvent::SendComplete { .. } => {}
            }
        }
        if !self.eof[idx] && !self.outstanding[idx] && self.received[idx] < self.expected {
            let mr = self.mrs[idx];
            let id = self.next_id;
            self.next_id += 1;
            self.pool.shard_mut(h.shard).conn_mut(h.conn).exs_recv(
                api,
                &mr,
                0,
                self.recv_len,
                false,
                id,
            );
            self.outstanding[idx] = true;
            self.posted_recvs += 1;
            progressed = true;
        }
        progressed
    }

    fn service(&mut self, api: &mut NodeApi<'_>) {
        let mut ready = std::mem::take(&mut self.ready);
        loop {
            self.pool.poll_all_into(api, &mut ready);
            // Routing invariant: everything the poll reports must be a
            // handle this pool accepted, on the shard it was accepted
            // on — a foreign or mis-sharded handle is a dispatch bug.
            for &(h, _) in ready.iter() {
                let idx = *self
                    .idx_of
                    .get(&h)
                    .unwrap_or_else(|| panic!("poll reported unknown handle {h:?}"));
                assert_eq!(self.handles[idx], h);
            }
            let mut progressed = false;
            for &(h, r) in &ready {
                if r.readable || r.closed || r.error {
                    let idx = self.idx_of[&h];
                    progressed |= self.handle_conn(api, idx);
                }
            }
            if !progressed && !self.pool.has_backlog() {
                break;
            }
        }
        self.ready = ready;
    }
}

impl NodeApp for PropPoolServer {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        for idx in 0..self.handles.len() {
            self.handle_conn(api, idx);
        }
    }
    fn on_wake(&mut self, api: &mut NodeApi<'_>) {
        self.service(api);
    }
    fn is_done(&self) -> bool {
        self.eof.iter().all(|&e| e) && self.received.iter().all(|&r| r == self.expected)
    }
}

/// Runs one randomized fan-in through a sharded pool; panics on any
/// invariant violation.
#[allow(clippy::too_many_arguments)]
fn run_case(
    shards: usize,
    policy: ShardPolicy,
    conns: usize,
    msgs: usize,
    msg_len: u64,
    recv_len: u32,
    outstanding: usize,
    seed: u64,
) {
    let profile = profiles::fdr_infiniband();
    let cfg = ExsConfig {
        ring_capacity: 4096,
        credits: 8,
        sq_depth: 8,
        ..ExsConfig::default()
    };
    let recv_len = recv_len.clamp(1, 2048);
    let expected = msgs as u64 * msg_len;

    let mut net = SimNet::new();
    net.set_host_seed(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let server_node = net.add_node(profile.host.clone(), profile.hca.clone());
    let client_nodes: Vec<NodeId> = (0..conns)
        .map(|_| net.add_node(profile.host.clone(), profile.hca.clone()))
        .collect();
    for (i, &c) in client_nodes.iter().enumerate() {
        net.connect_nodes(
            c,
            server_node,
            profile.link.clone(),
            seed.wrapping_add(i as u64),
        );
    }

    let per_conn_cq = cfg.sq_depth * 2 + cfg.credits as usize * 2;
    let reactors: Vec<Reactor> = (0..shards)
        .map(|_| {
            let (send_cq, recv_cq) = net.with_api(server_node, |api| {
                (
                    api.create_cq(per_conn_cq * conns),
                    api.create_cq(per_conn_cq * conns),
                )
            });
            Reactor::new(send_cq, recv_cq, ReactorConfig::default())
        })
        .collect();
    let mut pool = ReactorPool::new(reactors, ShardConfig { shards, policy });

    let mut clients = Vec::new();
    let mut mrs = Vec::new();
    let mut handles = Vec::new();
    let mut idx_of = HashMap::new();
    for (idx, &cnode) in client_nodes.iter().enumerate() {
        // Affinity keys repeat across connections so the policy gets to
        // pile several conns onto one shard.
        let shard = pool.pick_shard(Some((idx % 3) as u64));
        let (send_cq, recv_cq) = pool.shard_cqs(shard);
        let (csock, ssock) =
            StreamSocket::pair_shared(&mut net, cnode, server_node, send_cq, recv_cq, &cfg);
        let handle = pool.accept_on(shard, ssock);
        assert!((handle.shard as usize) < shards);
        handles.push(handle);
        idx_of.insert(handle, idx);
        let slots: Vec<MrInfo> = net.with_api(cnode, |api| {
            (0..outstanding)
                .map(|_| api.register_mr(msg_len as usize, Access::NONE))
                .collect()
        });
        let free = (0..slots.len()).collect();
        clients.push(PropClient {
            sock: csock,
            idx,
            slots,
            free,
            slot_of: HashMap::new(),
            sent: 0,
            acked: 0,
            pos: 0,
            shutdown: false,
            msgs,
            msg_len,
            seed,
        });
        mrs.push(net.with_api(server_node, |api| {
            api.register_mr(recv_len as usize, Access::local_remote_write())
        }));
    }

    // Placement accounting before any traffic: assignments sum to the
    // accept count and live conns match.
    let stats = pool.shard_stats();
    assert_eq!(stats.iter().map(|s| s.assigned).sum::<u64>(), conns as u64);
    assert_eq!(stats.iter().map(|s| s.conns).sum::<u64>(), conns as u64);
    for (s, row) in stats.iter().enumerate() {
        assert_eq!(row.shard_id as usize, s);
        assert_eq!(row.conns, pool.shard_conns(s as u32));
    }

    let mut server = PropPoolServer {
        pool,
        handles,
        idx_of,
        mrs,
        recv_len,
        expected,
        received: vec![0; conns],
        eof: vec![false; conns],
        outstanding: vec![false; conns],
        seen_recv_ids: HashSet::new(),
        posted_recvs: 0,
        completed_recvs: 0,
        seed,
        next_id: 0,
        ready: Vec::new(),
    };

    let mut apps: Vec<&mut dyn NodeApp> = Vec::with_capacity(1 + conns);
    apps.push(&mut server);
    for c in clients.iter_mut() {
        apps.push(c);
    }
    let outcome = net.run(&mut apps, SimTime::from_secs(600));
    assert!(outcome.completed, "sharded workload stalled: {outcome:?}");

    // Nothing dropped, nothing duplicated: every posted receive
    // completed exactly once and every stream delivered in full (the
    // per-byte pattern asserts ordered delivery along the way).
    assert_eq!(server.posted_recvs, server.completed_recvs);
    assert_eq!(server.seen_recv_ids.len() as u64, server.completed_recvs);
    assert!(server.received.iter().all(|&r| r == expected));

    // Merged stats are the sum of the per-shard rows.
    let merged = server.pool.reactor_stats();
    assert_eq!(merged.orphan_cqes, 0);
    let rows = server.pool.shard_stats();
    assert_eq!(
        merged.polls,
        rows.iter().map(|s| s.polls).sum::<u64>(),
        "merged polls must sum the shards"
    );
    assert_eq!(
        merged.cqes_dispatched,
        rows.iter().map(|s| s.cqes_dispatched).sum::<u64>(),
        "merged dispatch count must sum the shards"
    );
}

fn any_policy() -> impl Strategy<Value = ShardPolicy> {
    prop_oneof![
        Just(ShardPolicy::RoundRobin),
        Just(ShardPolicy::LeastLoaded),
        Just(ShardPolicy::Affinity),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Random shard policies × conn counts × recv splits never reorder
    /// or drop a byte.
    #[test]
    fn sharding_never_reorders_or_drops(
        shards in 1usize..5,
        policy in any_policy(),
        (conns, msgs, msg_len) in (2usize..6, 1usize..4, 1u64..4000),
        recv_len in 1u32..2048,
        outstanding in 1usize..3,
        seed in 0u64..10_000,
    ) {
        run_case(shards, policy, conns, msgs, msg_len, recv_len, outstanding, seed);
    }
}

/// A deliberately skewed affinity workload (every connection shares one
/// key) funnels everything onto one shard — and still delivers every
/// byte in order, with the other shards idle but polled.
#[test]
fn single_hot_shard_still_delivers() {
    run_case(4, ShardPolicy::Affinity, 5, 3, 2500, 512, 2, 77);
}
