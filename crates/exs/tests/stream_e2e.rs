//! End-to-end stream tests: two EXS endpoints over the simulated fabric,
//! byte-for-byte verification of delivered data in every protocol mode.

use exs::{ExsConfig, ExsEvent, ProtocolMode, StreamSocket};
use rdma_verbs::profiles::{fdr_infiniband, ideal, HwProfile};
use rdma_verbs::{Access, MrInfo, NodeApi, NodeApp, SimNet};
use simnet::SimTime;

/// Deterministic stream byte pattern: the byte at stream offset `i`.
fn pattern(i: u64) -> u8 {
    (i.wrapping_mul(131).wrapping_add(i >> 8)) as u8
}

/// Sender app: sends `msgs` messages back to back, keeping up to
/// `outstanding` in flight, each filled with the stream pattern.
struct SenderApp {
    sock: Option<StreamSocket>,
    slots: Vec<MrInfo>,
    slot_of: Vec<usize>,
    msgs: Vec<u64>,
    next: usize,
    inflight: usize,
    outstanding: usize,
    completed: usize,
    stream_pos: u64,
}

impl SenderApp {
    fn new(msgs: Vec<u64>, outstanding: usize) -> Self {
        SenderApp {
            sock: None,
            slots: Vec::new(),
            slot_of: vec![usize::MAX; msgs.len()],
            msgs,
            next: 0,
            inflight: 0,
            outstanding,
            completed: 0,
            stream_pos: 0,
        }
    }

    fn setup(&mut self, api: &mut NodeApi<'_>, sock: StreamSocket, max_msg: usize) {
        for _ in 0..self.outstanding {
            self.slots.push(api.register_mr(max_msg, Access::NONE));
        }
        self.sock = Some(sock);
    }

    fn kick(&mut self, api: &mut NodeApi<'_>) {
        while self.inflight < self.outstanding && self.next < self.msgs.len() {
            let len = self.msgs[self.next];
            // Find a free slot (one exists: inflight < outstanding).
            let used: Vec<usize> = self.slot_of[..self.next]
                .iter()
                .enumerate()
                .filter(|&(i, &s)| s != usize::MAX && i >= self.completed_low())
                .map(|(_, &s)| s)
                .collect();
            let slot = (0..self.slots.len())
                .find(|s| !used.contains(s))
                .expect("free slot available");
            self.slot_of[self.next] = slot;
            let mr = self.slots[slot];
            let data: Vec<u8> = (0..len).map(|i| pattern(self.stream_pos + i)).collect();
            api.write_mr(mr.key, mr.addr, &data).unwrap();
            self.sock
                .as_mut()
                .unwrap()
                .exs_send(api, &mr, 0, len, self.next as u64);
            self.stream_pos += len;
            self.inflight += 1;
            self.next += 1;
        }
    }

    fn completed_low(&self) -> usize {
        self.completed
    }
}

impl NodeApp for SenderApp {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        self.kick(api);
    }
    fn on_wake(&mut self, api: &mut NodeApi<'_>) {
        let sock = self.sock.as_mut().unwrap();
        sock.handle_wake(api);
        for ev in sock.take_events() {
            if let ExsEvent::SendComplete { id, len } = ev {
                assert_eq!(len, self.msgs[id as usize]);
                self.slot_of[id as usize] = usize::MAX;
                self.inflight -= 1;
                self.completed += 1;
            }
        }
        self.kick(api);
    }
    fn is_done(&self) -> bool {
        self.completed == self.msgs.len()
    }
}

/// Receiver app: keeps `outstanding` receives posted and verifies the
/// stream pattern on every completion.
struct ReceiverApp {
    sock: Option<StreamSocket>,
    slots: Vec<MrInfo>,
    free_slots: Vec<usize>,
    slot_of: std::collections::HashMap<u64, usize>,
    recv_len: u32,
    waitall: bool,
    outstanding: usize,
    expected_total: u64,
    received: u64,
    next_id: u64,
}

impl ReceiverApp {
    fn new(recv_len: u32, waitall: bool, outstanding: usize, expected_total: u64) -> Self {
        ReceiverApp {
            sock: None,
            slots: Vec::new(),
            free_slots: Vec::new(),
            slot_of: std::collections::HashMap::new(),
            recv_len,
            waitall,
            outstanding,
            expected_total,
            received: 0,
            next_id: 0,
        }
    }

    fn setup(&mut self, api: &mut NodeApi<'_>, sock: StreamSocket) {
        for i in 0..self.outstanding {
            self.slots
                .push(api.register_mr(self.recv_len as usize, Access::local_remote_write()));
            self.free_slots.push(i);
        }
        self.sock = Some(sock);
    }

    /// Bytes still expected, capped by the posted length; with WAITALL
    /// the final short receive must be sized exactly.
    fn post_len(&self, posted_ahead: u64) -> u32 {
        if self.waitall {
            let left = self.expected_total - self.received - posted_ahead;
            (self.recv_len as u64).min(left) as u32
        } else {
            self.recv_len
        }
    }

    fn kick(&mut self, api: &mut NodeApi<'_>) {
        // Track how many bytes the already-posted receives will consume
        // (exact only for WAITALL; plain receives may complete short, in
        // which case extra receives are posted on later wakes).
        let mut posted_ahead: u64 = self
            .slot_of
            .len()
            .checked_mul(self.recv_len as usize)
            .unwrap_or(0) as u64;
        while !self.free_slots.is_empty() {
            if self.received + posted_ahead >= self.expected_total {
                break;
            }
            let len = self.post_len(posted_ahead);
            if len == 0 {
                break;
            }
            let slot = self.free_slots.pop().unwrap();
            let mr = self.slots[slot];
            let id = self.next_id;
            self.next_id += 1;
            self.slot_of.insert(id, slot);
            self.sock
                .as_mut()
                .unwrap()
                .exs_recv(api, &mr, 0, len, self.waitall, id);
            posted_ahead += len as u64;
        }
    }

    fn drain_events(&mut self, api: &mut NodeApi<'_>) {
        // A kick can complete synchronously (receive satisfied from the
        // intermediate buffer), producing new events — loop until the
        // socket quiesces.
        self.kick(api);
        loop {
            let events = self.sock.as_mut().unwrap().take_events();
            if events.is_empty() {
                break;
            }
            for ev in events {
                if let ExsEvent::RecvComplete { id, len } = ev {
                    let slot = self.slot_of.remove(&id).expect("slot for recv");
                    let mr = self.slots[slot];
                    let mut buf = vec![0u8; len as usize];
                    api.read_mr(mr.key, mr.addr, &mut buf).unwrap();
                    for (i, &b) in buf.iter().enumerate() {
                        assert_eq!(
                            b,
                            pattern(self.received + i as u64),
                            "stream corruption at offset {}",
                            self.received + i as u64
                        );
                    }
                    self.received += len as u64;
                    self.free_slots.push(slot);
                }
            }
            self.kick(api);
        }
    }
}

impl NodeApp for ReceiverApp {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        self.kick(api);
        // exs_recv may complete immediately from buffered data.
        self.drain_events(api);
    }
    fn on_wake(&mut self, api: &mut NodeApi<'_>) {
        self.sock.as_mut().unwrap().handle_wake(api);
        self.drain_events(api);
    }
    fn is_done(&self) -> bool {
        self.received == self.expected_total
    }
}

/// Runs a full exchange and returns (sender stats snapshot via closure
/// access is awkward, so we return the apps).
#[allow(clippy::too_many_arguments)]
fn run_exchange(
    profile: HwProfile,
    cfg: ExsConfig,
    msgs: Vec<u64>,
    send_outstanding: usize,
    recv_len: u32,
    waitall: bool,
    recv_outstanding: usize,
    seed: u64,
) -> (SenderApp, ReceiverApp, SimNet) {
    let total: u64 = msgs.iter().sum();
    let mut net = SimNet::new();
    let a = net.add_node(profile.host.clone(), profile.hca.clone());
    let b = net.add_node(profile.host.clone(), profile.hca.clone());
    net.connect_nodes(a, b, profile.link.clone(), seed);

    let (sock_a, sock_b) = StreamSocket::pair(&mut net, a, b, &cfg);
    let max_msg = msgs.iter().copied().max().unwrap_or(1) as usize;

    let mut sender = SenderApp::new(msgs, send_outstanding);
    let mut receiver = ReceiverApp::new(recv_len, waitall, recv_outstanding, total);
    net.with_api(a, |api| sender.setup(api, sock_a, max_msg.max(1)));
    net.with_api(b, |api| receiver.setup(api, sock_b));

    let outcome = net.run(&mut [&mut sender, &mut receiver], SimTime::from_secs(100));
    assert!(
        outcome.completed,
        "exchange did not finish: sent {}/{} recv {}/{} (events {})",
        sender.completed,
        sender.msgs.len(),
        receiver.received,
        receiver.expected_total,
        outcome.events,
    );
    (sender, receiver, net)
}

fn modes() -> [ProtocolMode; 3] {
    [
        ProtocolMode::Dynamic,
        ProtocolMode::DirectOnly,
        ProtocolMode::IndirectOnly,
    ]
}

#[test]
fn uniform_messages_all_modes() {
    for mode in modes() {
        let cfg = ExsConfig::with_mode(mode);
        let msgs = vec![8192; 50];
        let (s, r, _) = run_exchange(ideal(), cfg, msgs, 4, 8192, false, 8, 1);
        assert_eq!(r.received, 50 * 8192, "mode {mode:?}");
        let st = s.sock.as_ref().unwrap().stats();
        match mode {
            ProtocolMode::DirectOnly => assert_eq!(st.indirect_transfers, 0),
            ProtocolMode::IndirectOnly | ProtocolMode::BCopy => {
                assert_eq!(st.direct_transfers, 0)
            }
            ProtocolMode::Dynamic => assert!(st.total_transfers() > 0),
        }
    }
}

#[test]
fn mixed_sizes_cross_recv_boundaries() {
    // Message sizes deliberately misaligned with the receive size so the
    // stream splitting logic is exercised in every mode.
    for mode in modes() {
        let cfg = ExsConfig::with_mode(mode);
        let msgs = vec![1, 100, 7, 4096, 9000, 3, 65536, 511, 513, 17];
        let (_, r, _) = run_exchange(ideal(), cfg, msgs.clone(), 3, 1024, false, 6, 2);
        assert_eq!(r.received, msgs.iter().sum::<u64>(), "mode {mode:?}");
    }
}

#[test]
fn waitall_fills_buffers_exactly() {
    for mode in modes() {
        let cfg = ExsConfig::with_mode(mode);
        // 10 × 10000 bytes sent, received in full 4096-byte chunks
        // (MSG_WAITALL), final chunk sized to the remainder.
        let msgs = vec![10_000; 10];
        let (_, r, _) = run_exchange(ideal(), cfg, msgs, 4, 4096, true, 4, 3);
        assert_eq!(r.received, 100_000, "mode {mode:?}");
    }
}

#[test]
fn tiny_ring_forces_flow_control() {
    // A 4 KiB intermediate buffer with 64 KiB messages: the indirect path
    // must repeatedly stall on b_s and resume on ACKs.
    let cfg = ExsConfig {
        ring_capacity: 4096,
        ..ExsConfig::with_mode(ProtocolMode::IndirectOnly)
    };
    let msgs = vec![65_536; 8];
    let (s, r, _) = run_exchange(ideal(), cfg, msgs, 2, 8192, false, 4, 4);
    assert_eq!(r.received, 8 * 65_536);
    let st = s.sock.as_ref().unwrap().stats();
    assert!(
        st.indirect_transfers >= (8 * 65_536) / 4096,
        "chunking through the tiny ring expected"
    );
}

#[test]
fn scarce_credits_are_replenished() {
    // Few credits force standalone CREDIT messages to keep flowing.
    let cfg = ExsConfig {
        credits: 8,
        ..ExsConfig::with_mode(ProtocolMode::Dynamic)
    };
    let msgs = vec![4096; 200];
    let (s, r, _) = run_exchange(ideal(), cfg, msgs, 4, 4096, false, 8, 5);
    assert_eq!(r.received, 200 * 4096);
    let s_stats = s.sock.as_ref().unwrap().stats();
    let r_stats = r.sock.as_ref().unwrap().stats();
    assert!(
        s_stats.credits_sent + r_stats.credits_sent > 0,
        "credit machinery should have been exercised"
    );
}

#[test]
fn fdr_profile_transfers_correctly() {
    let cfg = ExsConfig::default();
    let msgs = vec![1 << 20; 20];
    let (s, r, net) = run_exchange(fdr_infiniband(), cfg, msgs, 4, 1 << 20, false, 8, 6);
    assert_eq!(r.received, 20 << 20);
    // Sanity: moving 20 MiB over a ~54 Gbit/s link takes ≥ 3 ms.
    assert!(net.now() >= SimTime::from_millis(3), "time {:?}", net.now());
    let st = s.sock.as_ref().unwrap().stats();
    assert_eq!(st.direct_bytes + st.indirect_bytes, 20 << 20);
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let cfg = ExsConfig::default();
        let msgs: Vec<u64> = (0..100).map(|i| 1 + (i * 7919) % 50_000).collect();
        let (s, _, net) = run_exchange(fdr_infiniband(), cfg, msgs, 8, 16_384, false, 16, 42);
        let st = s.sock.as_ref().unwrap().stats().clone();
        (
            net.now(),
            st.direct_transfers,
            st.indirect_transfers,
            st.mode_switches,
        )
    };
    assert_eq!(run(), run(), "simulation must be bit-for-bit reproducible");
}

#[test]
fn single_byte_stream() {
    let cfg = ExsConfig::default();
    let msgs = vec![1; 64];
    let (_, r, _) = run_exchange(ideal(), cfg, msgs, 4, 1, false, 4, 7);
    assert_eq!(r.received, 64);
}

#[test]
fn one_large_message_through_small_recvs() {
    // A single 1 MiB send received through 4 KiB receive buffers: the
    // stream layer must split it across 256 receive completions.
    for mode in modes() {
        let cfg = ExsConfig::with_mode(mode);
        let (_, r, _) = run_exchange(ideal(), cfg, vec![1 << 20], 1, 4096, false, 8, 8);
        assert_eq!(r.received, 1 << 20, "mode {mode:?}");
    }
}
