//! Fault-injection tests: QP failure mid-run must flush posted receives
//! with `WrFlushError` completions, reject further work, and leave the
//! rest of the fabric running.

use rdma_verbs::{
    connect_pair, Access, HcaConfig, HostModel, MrInfo, NodeApi, NodeApp, QpCaps, QpNum, RecvWr,
    SendWr, SimNet, VerbsError, WcStatus,
};
use simnet::{LinkConfig, SimDuration, SimTime};

fn fast_link() -> LinkConfig {
    LinkConfig::simple(10_000_000_000, SimDuration::from_micros(1))
}

struct Quiet;
impl NodeApp for Quiet {
    fn on_start(&mut self, _api: &mut NodeApi<'_>) {}
    fn on_wake(&mut self, _api: &mut NodeApi<'_>) {}
    fn is_done(&self) -> bool {
        true
    }
}

/// Collects completions, counting flush errors.
struct FlushWatcher {
    cq: Option<rdma_verbs::CqId>,
    flushed: Vec<u64>,
    expect: usize,
}

impl NodeApp for FlushWatcher {
    fn on_start(&mut self, _api: &mut NodeApi<'_>) {}
    fn on_wake(&mut self, api: &mut NodeApi<'_>) {
        let mut cqes = Vec::new();
        api.poll_cq(self.cq.unwrap(), usize::MAX, &mut cqes)
            .unwrap();
        for c in cqes {
            assert_eq!(c.status, WcStatus::WrFlushError);
            assert_eq!(c.byte_len, 0);
            self.flushed.push(c.wr_id);
        }
    }
    fn is_done(&self) -> bool {
        self.flushed.len() >= self.expect
    }
}

#[test]
fn qp_failure_flushes_posted_receives() {
    let mut net = SimNet::new();
    let a = net.add_node(HostModel::free(), HcaConfig::default());
    let b = net.add_node(HostModel::free(), HcaConfig::default());
    net.connect_nodes(a, b, fast_link(), 1);
    let (_ha, hb) = connect_pair(&mut net, a, b, QpCaps::default(), 64).unwrap();

    let mr: MrInfo = net.with_api(b, |api| {
        let mr = api.register_mr(256, Access::LOCAL_WRITE);
        for i in 0..5 {
            api.post_recv(hb.qpn, RecvWr::new(100 + i, mr.sge(0, 64)))
                .unwrap();
        }
        mr
    });
    let _ = mr;

    net.inject_qp_error(b, hb.qpn).unwrap();

    let mut quiet = Quiet;
    let mut watcher = FlushWatcher {
        cq: Some(hb.recv_cq),
        flushed: Vec::new(),
        expect: 5,
    };
    let outcome = net.run(&mut [&mut quiet, &mut watcher], SimTime::from_secs(1));
    assert!(outcome.completed, "flush completions must be delivered");
    assert_eq!(watcher.flushed, vec![100, 101, 102, 103, 104]);
}

#[test]
fn failed_qp_rejects_new_work() {
    let mut net = SimNet::new();
    let a = net.add_node(HostModel::free(), HcaConfig::default());
    let b = net.add_node(HostModel::free(), HcaConfig::default());
    net.connect_nodes(a, b, fast_link(), 2);
    let (ha, _hb) = connect_pair(&mut net, a, b, QpCaps::default(), 64).unwrap();

    net.inject_qp_error(a, ha.qpn).unwrap();
    net.with_api(a, |api| {
        let mr = api.register_mr(64, Access::NONE);
        let err = api.post_send(ha.qpn, SendWr::send(1, mr.sge(0, 8)));
        assert_eq!(err, Err(VerbsError::InvalidQpState));
        let err = api.post_recv(ha.qpn, RecvWr::new(2, mr.sge(0, 8)));
        assert_eq!(err, Err(VerbsError::InvalidQpState));
    });
}

#[test]
fn unaffected_connection_keeps_working() {
    // Two connections between the same nodes; killing one must not
    // disturb the other.
    let mut net = SimNet::new();
    let a = net.add_node(HostModel::free(), HcaConfig::default());
    let b = net.add_node(HostModel::free(), HcaConfig::default());
    net.connect_nodes(a, b, fast_link(), 3);
    let (dead_a, _dead_b) = connect_pair(&mut net, a, b, QpCaps::default(), 64).unwrap();
    let (live_a, live_b) = connect_pair(&mut net, a, b, QpCaps::default(), 64).unwrap();

    net.inject_qp_error(a, dead_a.qpn).unwrap();

    struct OneShot {
        qpn: QpNum,
        mr: Option<MrInfo>,
        fired: bool,
    }
    impl NodeApp for OneShot {
        fn on_start(&mut self, api: &mut NodeApi<'_>) {
            let mr = self.mr.unwrap();
            api.post_send(self.qpn, SendWr::send(1, mr.sge(0, 8)))
                .unwrap();
            self.fired = true;
        }
        fn on_wake(&mut self, _api: &mut NodeApi<'_>) {}
        fn is_done(&self) -> bool {
            self.fired
        }
    }
    struct Sink {
        cq: rdma_verbs::CqId,
        got: usize,
    }
    impl NodeApp for Sink {
        fn on_start(&mut self, _api: &mut NodeApi<'_>) {}
        fn on_wake(&mut self, api: &mut NodeApi<'_>) {
            let mut cqes = Vec::new();
            api.poll_cq(self.cq, usize::MAX, &mut cqes).unwrap();
            self.got += cqes.len();
        }
        fn is_done(&self) -> bool {
            self.got >= 1
        }
    }

    let mut sender = OneShot {
        qpn: live_a.qpn,
        mr: None,
        fired: false,
    };
    let mut sink = Sink {
        cq: live_b.recv_cq,
        got: 0,
    };
    net.with_api(a, |api| {
        sender.mr = Some(api.register_mr(64, Access::NONE));
    });
    net.with_api(b, |api| {
        let mr = api.register_mr(64, Access::LOCAL_WRITE);
        api.post_recv(live_b.qpn, RecvWr::new(9, mr.sge(0, 64)))
            .unwrap();
    });
    let outcome = net.run(&mut [&mut sender, &mut sink], SimTime::from_secs(1));
    assert!(outcome.completed, "live connection must still deliver");
    assert_eq!(sink.got, 1);
}

#[test]
fn fail_unknown_qp_errors() {
    let mut net = SimNet::new();
    let a = net.add_node(HostModel::free(), HcaConfig::default());
    assert!(net.inject_qp_error(a, QpNum(777)).is_err());
}
