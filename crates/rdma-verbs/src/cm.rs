//! Connection management helpers.
//!
//! Real deployments use the RDMA connection manager (`rdma_cm`) to
//! exchange QP numbers and transition QPs through INIT/RTR/RTS. The
//! simulator performs that exchange out of band — connection setup is
//! outside every timed window in the paper's experiments — but keeps the
//! same observable result: a pair of RTS queue pairs bound to each other,
//! each with its own send and receive completion queues.

use crate::qp::QpCaps;
use crate::sim::SimNet;
use crate::types::{CqId, NodeId, QpNum, Result};

/// One side of an established connection.
#[derive(Clone, Copy, Debug)]
pub struct ConnHalf {
    /// The node this half lives on.
    pub node: NodeId,
    /// The connected queue pair.
    pub qpn: QpNum,
    /// CQ receiving send completions.
    pub send_cq: CqId,
    /// CQ receiving receive completions.
    pub recv_cq: CqId,
}

/// Creates CQs and a QP on each node and connects them, RTS on both
/// sides. `cq_depth` of 0 uses the HCA default.
pub fn connect_pair(
    net: &mut SimNet,
    a: NodeId,
    b: NodeId,
    caps: QpCaps,
    cq_depth: usize,
) -> Result<(ConnHalf, ConnHalf)> {
    connect_pair_on_cqs(net, a, b, caps, cq_depth, None)
}

/// Like [`connect_pair`], but when `b_cqs` is given, `b`'s QP completes
/// onto those existing `(send_cq, recv_cq)` instead of fresh ones.
///
/// This is the server shape of an epoll-style event loop: every accepted
/// QP shares one send and one receive CQ, so a single poller drains all
/// completions in batches and dispatches them by the CQE's `qpn` — one
/// CQ poll per wake-up instead of one per connection.
pub fn connect_pair_on_cqs(
    net: &mut SimNet,
    a: NodeId,
    b: NodeId,
    caps: QpCaps,
    cq_depth: usize,
    b_cqs: Option<(CqId, CqId)>,
) -> Result<(ConnHalf, ConnHalf)> {
    connect_pool(net, a, b, caps, cq_depth, None, b_cqs)
}

/// The most general pairwise connect: either side may complete onto
/// caller-provided `(send_cq, recv_cq)` instead of fresh ones.
///
/// This is the shape a shared-transport pool needs: *both* endpoints
/// multiplex many QPs onto one CQ pair each, so every member QP of the
/// pool is created against the pool's shared CQs on its own side.
pub fn connect_pool(
    net: &mut SimNet,
    a: NodeId,
    b: NodeId,
    caps: QpCaps,
    cq_depth: usize,
    a_cqs: Option<(CqId, CqId)>,
    b_cqs: Option<(CqId, CqId)>,
) -> Result<(ConnHalf, ConnHalf)> {
    let (a_send, a_recv, a_qp) = net.with_api(a, |api| {
        let (send_cq, recv_cq) = match a_cqs {
            Some(cqs) => cqs,
            None => (api.create_cq(cq_depth), api.create_cq(cq_depth)),
        };
        let qpn = api.create_qp(send_cq, recv_cq, caps)?;
        Ok::<_, crate::types::VerbsError>((send_cq, recv_cq, qpn))
    })?;
    let (b_send, b_recv, b_qp) = net.with_api(b, |api| {
        let (send_cq, recv_cq) = match b_cqs {
            Some(cqs) => cqs,
            None => (api.create_cq(cq_depth), api.create_cq(cq_depth)),
        };
        let qpn = api.create_qp(send_cq, recv_cq, caps)?;
        Ok::<_, crate::types::VerbsError>((send_cq, recv_cq, qpn))
    })?;
    net.with_api(a, |api| api.connect_qp(a_qp, (b, b_qp)))?;
    net.with_api(b, |api| api.connect_qp(b_qp, (a, a_qp)))?;
    Ok((
        ConnHalf {
            node: a,
            qpn: a_qp,
            send_cq: a_send,
            recv_cq: a_recv,
        },
        ConnHalf {
            node: b,
            qpn: b_qp,
            send_cq: b_send,
            recv_cq: b_recv,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hca::HcaConfig;
    use crate::host::HostModel;
    use crate::qp::QpState;
    use simnet::{LinkConfig, SimDuration};

    #[test]
    fn connect_pair_reaches_rts_both_sides() {
        let mut net = SimNet::new();
        let a = net.add_node(HostModel::free(), HcaConfig::default());
        let b = net.add_node(HostModel::free(), HcaConfig::default());
        net.connect_nodes(
            a,
            b,
            LinkConfig::simple(10_000_000_000, SimDuration::from_micros(1)),
            0,
        );
        let (ha, hb) = connect_pair(&mut net, a, b, QpCaps::default(), 128).unwrap();
        assert_eq!(ha.node, a);
        assert_eq!(hb.node, b);
        net.with_api(a, |api| {
            let qp = api.hca().qp(ha.qpn).unwrap();
            assert_eq!(qp.state(), QpState::ReadyToSend);
            assert_eq!(qp.remote(), Some((b, hb.qpn)));
        });
        net.with_api(b, |api| {
            let qp = api.hca().qp(hb.qpn).unwrap();
            assert_eq!(qp.state(), QpState::ReadyToSend);
            assert_eq!(qp.remote(), Some((a, ha.qpn)));
        });
        assert_ne!(ha.send_cq, ha.recv_cq);
    }

    #[test]
    fn connect_pool_shares_cqs_on_both_sides() {
        let mut net = SimNet::new();
        let a = net.add_node(HostModel::free(), HcaConfig::default());
        let b = net.add_node(HostModel::free(), HcaConfig::default());
        net.connect_nodes(
            a,
            b,
            LinkConfig::simple(10_000_000_000, SimDuration::from_micros(1)),
            0,
        );
        let a_cqs = net.with_api(a, |api| (api.create_cq(256), api.create_cq(256)));
        let b_cqs = net.with_api(b, |api| (api.create_cq(256), api.create_cq(256)));
        let mut halves = Vec::new();
        for _ in 0..3 {
            halves.push(
                connect_pool(
                    &mut net,
                    a,
                    b,
                    QpCaps::default(),
                    128,
                    Some(a_cqs),
                    Some(b_cqs),
                )
                .unwrap(),
            );
        }
        // Every pool member completes onto the one shared CQ pair per
        // side, and each connect yields a distinct QP.
        for (ha, hb) in &halves {
            assert_eq!((ha.send_cq, ha.recv_cq), a_cqs);
            assert_eq!((hb.send_cq, hb.recv_cq), b_cqs);
        }
        assert_ne!(halves[0].0.qpn, halves[1].0.qpn);
        assert_ne!(halves[1].1.qpn, halves[2].1.qpn);
    }
}
