//! Calibrated hardware profiles.
//!
//! Each profile bundles the link, HCA and host parameters for one of the
//! testbeds in the paper's evaluation (§IV-B), plus a few extras used by
//! ablations. The values are *model inputs* chosen so the simulated
//! system reproduces the published performance shape; EXPERIMENTS.md
//! records paper-vs-measured numbers for every figure.

use simnet::{LinkConfig, SimDuration};

use crate::hca::HcaConfig;
use crate::host::HostModel;

/// A complete hardware description for a two-node experiment.
#[derive(Clone, Debug)]
pub struct HwProfile {
    /// Human-readable name, recorded in benchmark output.
    pub name: &'static str,
    /// Link parameters (applied symmetrically).
    pub link: LinkConfig,
    /// HCA parameters (both nodes).
    pub hca: HcaConfig,
    /// Host cost model (both nodes).
    pub host: HostModel,
}

const GBIT: u64 = 1_000_000_000;

/// FDR InfiniBand through one switch: Mellanox ConnectX-3 on PCIe gen3
/// hosts (Xeon E5-2690), as in the paper's first test series.
///
/// FDR 4x signals at 56 Gbit/s with 64/66 encoding → 54.3 Gbit/s data
/// rate. The measured one-way latency for 64-byte messages was 0.76 µs;
/// we split that between propagation (switch + cable) and per-WQE HCA
/// processing. Large-copy memcpy bandwidth is set so the indirect-only
/// protocol plateaus in the paper's 20–27 Gbit/s band while the wire
/// allows ~44 Gbit/s of user payload.
pub fn fdr_infiniband() -> HwProfile {
    HwProfile {
        name: "fdr-infiniband",
        link: LinkConfig {
            // FDR 4x signals 56 Gbit/s (54.3 after 64/66 encoding), but
            // the end-to-end data path is PCIe gen3 x8 limited: the
            // paper's direct-only protocol tops out near 44 Gbit/s. We
            // model the combined wire+DMA path as one 45.5 Gbit/s
            // bottleneck with IB framing on top.
            bandwidth_bps: 45_500_000_000,
            propagation: SimDuration::from_nanos(300),
            mtu: 4096,
            per_packet_overhead: 64,
            jitter: SimDuration::ZERO,
        },
        hca: HcaConfig {
            wqe_process: SimDuration::from_nanos(230),
            default_cq_depth: 1 << 16,
        },
        host: HostModel {
            // ~3.2 GiB/s effective for cache-missing copy in + copy out
            // on the 2012-era Xeon; this is the indirect path's governor.
            memcpy_bytes_per_sec: 3_400_000_000,
            memcpy_base: SimDuration::from_nanos(150),
            post_overhead: SimDuration::from_nanos(250),
            poll_overhead: SimDuration::from_nanos(120),
            cqe_process: SimDuration::from_nanos(500),
            event_wakeup: SimDuration::from_nanos(500),
            wakeup_latency: SimDuration::from_micros(3),
            stall_prob: 0.02,
            stall_max: SimDuration::from_micros(40),
            busy_poll: false,
            jitter_frac: 0.3,
            // Memory registration on MLNX OFED of that era: ~35 µs of
            // fixed ioctl/pin setup plus ~250 ns per pinned 4 KiB page
            // (get_user_pages + MTT entry). Deregistration unpins at
            // roughly half the per-page cost. These are the costs the
            // pin-down cache amortizes away.
            mr_register_base: SimDuration::from_micros(35),
            mr_register_per_page: SimDuration::from_nanos(250),
            mr_deregister_base: SimDuration::from_micros(18),
            mr_deregister_per_page: SimDuration::from_nanos(120),
        },
    }
}

/// QDR InfiniBand variant (32 Gbit/s data rate). The paper remarks that
/// on QDR the indirect protocol compares much more favourably because
/// the wire rate is not dramatically higher than memcpy throughput; the
/// QDR ablation demonstrates exactly that.
pub fn qdr_infiniband() -> HwProfile {
    let mut p = fdr_infiniband();
    p.name = "qdr-infiniband";
    // QDR 4x data rate is 32 Gbit/s; on the PCIe gen2 hosts of that era
    // the end-to-end path lands near 26 Gbit/s — within ~20% of the
    // memcpy path, which is why the paper notes the indirect protocol
    // "compares much more favorably" on QDR.
    p.link.bandwidth_bps = 26 * GBIT;
    p.link.mtu = 2048;
    p
}

/// 10 Gbit/s RoCE through the Anue network emulator: ConnectX-2 on PCIe
/// gen2 hosts (Xeon X5670), with a configurable fixed one-way delay.
/// The paper sets a 48 ms round trip (24 ms each way).
pub fn roce_10g(one_way_delay: SimDuration) -> HwProfile {
    HwProfile {
        name: "roce-10g",
        link: LinkConfig {
            bandwidth_bps: 10 * GBIT,
            propagation: one_way_delay + SimDuration::from_nanos(500),
            mtu: 1500,
            // Ethernet + RoCE (IB GRH/BTH) framing.
            per_packet_overhead: 58,
            jitter: SimDuration::ZERO,
        },
        hca: HcaConfig {
            wqe_process: SimDuration::from_nanos(350),
            default_cq_depth: 1 << 16,
        },
        host: HostModel {
            // Older host: slower copies, slower posts.
            memcpy_bytes_per_sec: 2_600_000_000,
            memcpy_base: SimDuration::from_nanos(200),
            post_overhead: SimDuration::from_nanos(300),
            poll_overhead: SimDuration::from_nanos(150),
            cqe_process: SimDuration::from_nanos(450),
            event_wakeup: SimDuration::from_nanos(600),
            wakeup_latency: SimDuration::from_micros(4),
            stall_prob: 0.02,
            stall_max: SimDuration::from_micros(40),
            busy_poll: false,
            jitter_frac: 0.3,
            // Older host and HCA: registration is noticeably slower
            // than on the FDR testbed.
            mr_register_base: SimDuration::from_micros(45),
            mr_register_per_page: SimDuration::from_nanos(320),
            mr_deregister_base: SimDuration::from_micros(22),
            mr_deregister_per_page: SimDuration::from_nanos(150),
        },
    }
}

/// FDR InfiniBand with busy-polling completion handling instead of
/// event notification (latency ablation; "busy polling" in the paper's
/// §IV-B discussion). CPU usage is 100% by definition when polling.
pub fn fdr_infiniband_busy_poll() -> HwProfile {
    let mut p = fdr_infiniband();
    p.name = "fdr-infiniband-busy-poll";
    p.host.busy_poll = true;
    p
}

/// A 10 Gbit/s iWARP NIC of the old generation that lacks native
/// RDMA WRITE WITH IMM — used by the WWI-emulation ablation (the EXS
/// config's `WwiMode::WritePlusSend` follows each WRITE with a small
/// SEND, paper §II-B).
pub fn iwarp_10g() -> HwProfile {
    let mut p = roce_10g(SimDuration::from_micros(2));
    p.name = "iwarp-10g";
    // TCP-based transport: slightly higher per-packet framing.
    p.link.per_packet_overhead = 78;
    p
}

/// The paper's WAN configuration: 10 G RoCE with the Anue emulator set
/// to a 48 ms round-trip delay.
pub fn roce_10g_wan() -> HwProfile {
    let mut p = roce_10g(SimDuration::from_millis(24));
    p.name = "roce-10g-wan-48ms";
    p
}

/// An idealized profile where every host cost is zero and the link is
/// effectively instantaneous. Protocol unit tests use this so logic is
/// checked independent of timing.
pub fn ideal() -> HwProfile {
    HwProfile {
        name: "ideal",
        link: LinkConfig {
            bandwidth_bps: 0, // zero models "infinitely fast" serialization
            propagation: SimDuration::from_nanos(1),
            mtu: 1 << 30,
            per_packet_overhead: 0,
            jitter: SimDuration::ZERO,
        },
        hca: HcaConfig {
            wqe_process: SimDuration::ZERO,
            default_cq_depth: 1 << 16,
        },
        host: HostModel::free(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fdr_large_message_goodput_band() {
        let p = fdr_infiniband();
        // Effective payload rate for 1 MiB messages: the paper's
        // direct-only protocol peaks near 44 Gbit/s, so the modelled
        // wire+DMA bottleneck must land large-message goodput just above
        // that (WQE and host costs shave the rest).
        let eff = p.link.efficiency(1 << 20);
        let goodput = p.link.bandwidth_bps as f64 * eff;
        assert!(
            goodput > 43.5e9 && goodput < 45.5e9,
            "goodput {goodput:.3e} out of expected band"
        );
    }

    #[test]
    fn fdr_memcpy_slower_than_wire() {
        let p = fdr_infiniband();
        let copy_bits_per_sec = p.host.memcpy_bytes_per_sec as f64 * 8.0;
        assert!(
            copy_bits_per_sec < p.link.bandwidth_bps as f64,
            "FDR must out-run the memcpy path for the paper's shape to hold"
        );
    }

    #[test]
    fn qdr_memcpy_competitive_with_wire() {
        let p = qdr_infiniband();
        let copy_bits_per_sec = p.host.memcpy_bytes_per_sec as f64 * 8.0;
        // On QDR the copy path is within ~20% of the wire rate.
        assert!(copy_bits_per_sec > p.link.bandwidth_bps as f64 * 0.8);
    }

    #[test]
    fn wan_profile_has_48ms_rtt() {
        let p = roce_10g_wan();
        let rtt = p.link.propagation.as_nanos() * 2;
        assert!((48_000_000..48_100_000).contains(&rtt));
    }

    #[test]
    fn ideal_profile_is_free() {
        let p = ideal();
        assert!(p.host.memcpy_time(1 << 30).is_zero());
        assert!(p.link.tx_time(1 << 20).is_zero());
        assert!(p.host.mr_register_time(1 << 20).is_zero());
    }

    #[test]
    fn registration_dwarfs_per_message_costs() {
        // The pin-down-cache premise: registering a 64 KiB buffer costs
        // 1-2 orders of magnitude more than posting a send, so register-
        // per-transfer workloads are dominated by registration.
        for p in [fdr_infiniband(), roce_10g(SimDuration::from_micros(2))] {
            let reg = p.host.mr_register_time(64 << 10).as_nanos();
            let post = p.host.post_overhead.as_nanos();
            assert!(
                reg > 50 * post,
                "{}: reg {reg} ns not >> post {post} ns",
                p.name
            );
            // Dereg is cheaper than reg but still significant.
            let dereg = p.host.mr_deregister_time(64 << 10).as_nanos();
            assert!(
                dereg > 10 * post && dereg < reg,
                "{}: dereg {dereg}",
                p.name
            );
        }
    }

    #[test]
    fn one_way_latency_near_measured() {
        // Paper: 0.76 us one-way for 64-byte messages on FDR. Our model:
        // wqe_process + serialization + propagation should land nearby.
        let p = fdr_infiniband();
        let total = p.hca.wqe_process + p.link.tx_time(64) + p.link.propagation;
        let ns = total.as_nanos();
        assert!(
            (450..1100).contains(&ns),
            "one-way 64B latency {ns} ns too far from 760 ns"
        );
    }
}
