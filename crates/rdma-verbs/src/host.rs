//! Host CPU cost model and per-node CPU accounting.
//!
//! The paper's central trade-off is CPU time: indirect transfers save the
//! ADVERT round trip but cost the receiver a full memcpy per byte, driving
//! its CPU toward 100% (paper Fig. 10) and capping throughput below the
//! wire rate (Fig. 9). [`HostModel`] holds the calibrated per-operation
//! costs; [`CpuMeter`] serializes a node's protocol work on one simulated
//! core and integrates busy time so runs can report CPU usage exactly as
//! the paper's blast tool does.

use simnet::{SimDuration, SimTime};

/// Calibrated host-side costs. All values are model inputs; profiles in
/// [`crate::profiles`] provide era-appropriate defaults and every
/// experiment records the profile it used.
#[derive(Clone, Debug)]
pub struct HostModel {
    /// Sustained large-copy memory bandwidth (bytes/second) for
    /// cache-missing copies between the intermediate buffer and user
    /// memory.
    pub memcpy_bytes_per_sec: u64,
    /// Fixed per-memcpy-call overhead.
    pub memcpy_base: SimDuration,
    /// Cost of one `post_send`/`post_recv` verbs call (doorbell write,
    /// WQE build).
    pub post_overhead: SimDuration,
    /// Cost of one `poll_cq` call (amortized over a batch).
    pub poll_overhead: SimDuration,
    /// Protocol-layer cost of handling one completion event.
    pub cqe_process: SimDuration,
    /// CPU cost of processing a completion-channel event (the paper uses
    /// event notification, not busy polling, for large messages —
    /// §IV-B).
    pub event_wakeup: SimDuration,
    /// Sleep-to-run latency when a blocked process is woken by the
    /// completion channel: elapsed but *not* busy time (the process was
    /// in epoll_wait-style sleep). Applied only when the core was idle
    /// when the completion arrived.
    pub wakeup_latency: SimDuration,
    /// Probability that a wakeup suffers an additional scheduling stall
    /// (timer tick, interrupt, preemption) — the heavy tail of OS noise.
    pub stall_prob: f64,
    /// Maximum stall length (uniformly drawn in `[0, stall_max]`).
    pub stall_max: SimDuration,
    /// Busy-poll the completion queues instead of blocking on the
    /// completion channel: no wakeup latency and no scheduling stalls,
    /// but the core is pinned at 100% by definition (the paper's blast
    /// study uses event notification because "most messages ... are
    /// large enough that there is little advantage to busy polling",
    /// §IV-B; the latency ablation quantifies the advantage that *does*
    /// exist for small messages).
    pub busy_poll: bool,
    /// Relative uniform jitter applied to every charged CPU cost,
    /// modelling OS scheduling noise: each cost is scaled by a factor
    /// drawn uniformly from `[1 − jitter_frac, 1 + jitter_frac]`.
    /// Deterministic per simulation seed. The paper's mid-size dynamic
    /// runs show large run-to-run variance in the direct-transfer ratio
    /// (Fig. 11b); that variance comes from exactly this noise tipping
    /// the ADVERT race one way or the other.
    pub jitter_frac: f64,
    /// Fixed cost of one `ibv_reg_mr` call: the kernel transition, page
    /// pinning setup and HCA translation-table update. Pin-down-cache
    /// papers (Taranov et al.; MPICH2-over-IB) measure this in the tens
    /// of microseconds — the cost the mempool subsystem exists to avoid.
    pub mr_register_base: SimDuration,
    /// Incremental registration cost per 4 KiB page (get_user_pages +
    /// translation entry per page).
    pub mr_register_per_page: SimDuration,
    /// Fixed cost of one `ibv_dereg_mr` call (unpin + invalidate).
    pub mr_deregister_base: SimDuration,
    /// Incremental deregistration cost per 4 KiB page.
    pub mr_deregister_per_page: SimDuration,
}

impl HostModel {
    /// A model where everything is free — useful for unit tests that
    /// check protocol logic rather than timing.
    pub fn free() -> Self {
        HostModel {
            memcpy_bytes_per_sec: 0,
            memcpy_base: SimDuration::ZERO,
            post_overhead: SimDuration::ZERO,
            poll_overhead: SimDuration::ZERO,
            cqe_process: SimDuration::ZERO,
            event_wakeup: SimDuration::ZERO,
            wakeup_latency: SimDuration::ZERO,
            stall_prob: 0.0,
            stall_max: SimDuration::ZERO,
            busy_poll: false,
            jitter_frac: 0.0,
            mr_register_base: SimDuration::ZERO,
            mr_register_per_page: SimDuration::ZERO,
            mr_deregister_base: SimDuration::ZERO,
            mr_deregister_per_page: SimDuration::ZERO,
        }
    }

    /// Time to copy `bytes` through the CPU (zero-bandwidth models copy
    /// as free).
    pub fn memcpy_time(&self, bytes: u64) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        if self.memcpy_bytes_per_sec == 0 {
            return self.memcpy_base;
        }
        let ns = ((bytes as u128) * 1_000_000_000).div_ceil(self.memcpy_bytes_per_sec as u128);
        self.memcpy_base + SimDuration::from_nanos(ns.min(u64::MAX as u128) as u64)
    }

    /// Time to register a memory region of `bytes` bytes: the fixed
    /// syscall/pin setup plus a per-page pinning cost (regions are
    /// page-granular, so even a one-byte region pins one page).
    pub fn mr_register_time(&self, bytes: u64) -> SimDuration {
        let pages = bytes.div_ceil(4096).max(1);
        self.mr_register_base + self.mr_register_per_page.mul_u64(pages)
    }

    /// Time to deregister a memory region of `bytes` bytes.
    pub fn mr_deregister_time(&self, bytes: u64) -> SimDuration {
        let pages = bytes.div_ceil(4096).max(1);
        self.mr_deregister_base + self.mr_deregister_per_page.mul_u64(pages)
    }
}

/// One simulated core's schedule: work items are serialized, and busy
/// time is integrated for CPU-usage reporting.
#[derive(Clone, Debug)]
pub struct CpuMeter {
    /// The core is busy until this instant.
    free_at: SimTime,
    /// Total busy time ever charged.
    busy_total: SimDuration,
    /// Busy time charged since the last `window_reset`.
    busy_window: SimDuration,
    /// Start of the measurement window.
    window_start: SimTime,
}

impl Default for CpuMeter {
    fn default() -> Self {
        Self::new()
    }
}

impl CpuMeter {
    /// A fresh, idle core.
    pub fn new() -> Self {
        CpuMeter {
            free_at: SimTime::ZERO,
            busy_total: SimDuration::ZERO,
            busy_window: SimDuration::ZERO,
            window_start: SimTime::ZERO,
        }
    }

    /// The instant the core becomes idle.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Charges `work` starting no earlier than `now`, returning the
    /// completion instant. Work requested while the core is busy queues
    /// behind it (single-core model).
    pub fn charge(&mut self, now: SimTime, work: SimDuration) -> SimTime {
        let start = now.max(self.free_at);
        let end = start + work;
        self.free_at = end;
        self.busy_total += work;
        self.busy_window += work;
        end
    }

    /// Total busy time ever charged.
    pub fn busy_total(&self) -> SimDuration {
        self.busy_total
    }

    /// Resets the measurement window at `now`.
    pub fn window_reset(&mut self, now: SimTime) {
        self.busy_window = SimDuration::ZERO;
        self.window_start = now;
    }

    /// CPU usage over the current window, as a fraction in `[0, 1]`.
    /// `now` must be at or after the window start.
    pub fn usage(&self, now: SimTime) -> f64 {
        let elapsed = now.saturating_duration_since(self.window_start);
        if elapsed.is_zero() {
            return 0.0;
        }
        (self.busy_window.as_secs_f64() / elapsed.as_secs_f64()).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memcpy_time_scales() {
        let mut m = HostModel::free();
        m.memcpy_bytes_per_sec = 1_000_000_000; // 1 GB/s
        m.memcpy_base = SimDuration::from_nanos(100);
        assert_eq!(m.memcpy_time(1_000_000).as_nanos(), 1_000_100);
        assert!(m.memcpy_time(0).is_zero());
    }

    #[test]
    fn registration_time_is_page_granular() {
        let mut m = HostModel::free();
        m.mr_register_base = SimDuration::from_micros(30);
        m.mr_register_per_page = SimDuration::from_nanos(250);
        m.mr_deregister_base = SimDuration::from_micros(15);
        m.mr_deregister_per_page = SimDuration::from_nanos(100);
        // One byte still pins one page.
        assert_eq!(m.mr_register_time(1).as_nanos(), 30_000 + 250);
        // 64 KiB = 16 pages.
        assert_eq!(m.mr_register_time(64 << 10).as_nanos(), 30_000 + 16 * 250);
        assert_eq!(m.mr_deregister_time(64 << 10).as_nanos(), 15_000 + 16 * 100);
        // The free model charges nothing.
        assert!(HostModel::free().mr_register_time(1 << 20).is_zero());
    }

    #[test]
    fn memcpy_free_model() {
        let m = HostModel::free();
        assert!(m.memcpy_time(1 << 30).is_zero());
    }

    #[test]
    fn charge_serializes_work() {
        let mut cpu = CpuMeter::new();
        let t0 = SimTime::from_nanos(100);
        let end1 = cpu.charge(t0, SimDuration::from_nanos(50));
        assert_eq!(end1.as_nanos(), 150);
        // Requested "in the past" relative to core availability: queues.
        let end2 = cpu.charge(SimTime::from_nanos(120), SimDuration::from_nanos(30));
        assert_eq!(end2.as_nanos(), 180);
        // Requested after the core idles: starts immediately.
        let end3 = cpu.charge(SimTime::from_nanos(500), SimDuration::from_nanos(10));
        assert_eq!(end3.as_nanos(), 510);
        assert_eq!(cpu.busy_total().as_nanos(), 90);
    }

    #[test]
    fn usage_window() {
        let mut cpu = CpuMeter::new();
        cpu.charge(SimTime::ZERO, SimDuration::from_nanos(300));
        // 300 busy out of 1000 elapsed.
        let u = cpu.usage(SimTime::from_nanos(1000));
        assert!((u - 0.3).abs() < 1e-9);
        cpu.window_reset(SimTime::from_nanos(1000));
        assert_eq!(cpu.usage(SimTime::from_nanos(2000)), 0.0);
        cpu.charge(SimTime::from_nanos(1000), SimDuration::from_nanos(500));
        let u2 = cpu.usage(SimTime::from_nanos(2000));
        assert!((u2 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn usage_clamps_to_one() {
        let mut cpu = CpuMeter::new();
        // Charge more work than wall time elapsed (backlogged core).
        cpu.charge(SimTime::ZERO, SimDuration::from_nanos(5_000));
        assert_eq!(cpu.usage(SimTime::from_nanos(1_000)), 1.0);
    }

    #[test]
    fn usage_empty_window_is_zero() {
        let cpu = CpuMeter::new();
        assert_eq!(cpu.usage(SimTime::ZERO), 0.0);
    }
}
