//! Deterministic discrete-event driver.
//!
//! [`SimNet`] wires [`HcaCore`] nodes together with `simnet` links and a
//! virtual clock, and drives application logic written against the
//! [`NodeApp`] reactor trait. The model:
//!
//! * **Verbs timing** — a posted send occupies the QP's HCA pipeline for
//!   `wqe_process`, then serializes onto the link (which models
//!   transmitter-busy, per-packet framing, propagation and optional
//!   jitter). The send completion is delivered at wire departure; the
//!   message is delivered to the peer HCA at arrival.
//! * **CPU timing** — each node has one simulated core ([`CpuMeter`]).
//!   Application handlers run when the core is free; every verbs call,
//!   completion handling step and memory copy charges the core. This is
//!   what makes the receiver's copy cost visible as reduced throughput
//!   and increased CPU usage, the paper's central trade-off.
//! * **Wakeups** — completions wake the owning node's app (edge
//!   triggered, like an armed completion channel). Apps are expected to
//!   drain their CQs on each wake; the wakeup overhead is charged once
//!   per wake, modelling event notification rather than busy polling
//!   (the mode used by the paper's measurements).

use std::collections::HashMap;

use simnet::fabric::{FabricModel, FabricStats, FairShareFabric, FlowKey, Transfer};
use simnet::trace::TraceRing;
use simnet::{EventId, Link, LinkConfig, Scheduler, SimDuration, SimTime, Xoshiro256};

use crate::hca::{Effect, HcaConfig, HcaCore, PreparedSend};
use crate::host::{CpuMeter, HostModel};
use crate::mr::MrInfo;
use crate::qp::QpCaps;
use crate::types::{Access, CqId, Cqe, MrKey, NodeId, QpNum, RecvWr, Result, SendWr};
use crate::wire::WireMessage;

/// Reactor interface for application logic running on a simulated node.
///
/// Handlers receive a [`NodeApi`] giving access to verbs calls, registered
/// memory, timers and the CPU meter. All work done in a handler should be
/// charged via the api so the CPU model stays honest.
pub trait NodeApp {
    /// Called once before the event loop starts (time zero).
    fn on_start(&mut self, api: &mut NodeApi<'_>);
    /// Called when completions arrived for this node. Edge-triggered:
    /// drain your CQs before returning.
    fn on_wake(&mut self, api: &mut NodeApi<'_>);
    /// Called when a timer set via [`NodeApi::set_timer`] fires.
    fn on_timer(&mut self, api: &mut NodeApi<'_>, token: u64) {
        let _ = (api, token);
    }
    /// The run loop stops early when every app reports done.
    fn is_done(&self) -> bool {
        false
    }
}

enum Ev {
    Deliver {
        msg: WireMessage,
    },
    TxDone {
        node: NodeId,
        qpn: QpNum,
        cqe: Option<Cqe>,
    },
    Wake {
        node: NodeId,
    },
    Timer {
        node: NodeId,
        token: u64,
    },
    QpFail {
        node: NodeId,
        qpn: QpNum,
    },
    /// Fair-share mode: a message cleared its HCA pipeline and is handed
    /// to the fabric allocator (the flow-level analogue of
    /// `Link::transit`).
    FabricStart {
        token: u64,
    },
    /// Fair-share mode: the head transfer of flow `src → dst` moved its
    /// last bit. Scheduled at the allocator's predicted finish time and
    /// rescheduled whenever the flow re-speeds.
    FlowHeadDone {
        src: u32,
        dst: u32,
    },
}

/// A message parked in the fabric allocator between its `FabricStart`
/// and its flow-head completion (fair-share mode only).
struct PendingTx {
    msg: WireMessage,
    cqe: Option<Cqe>,
    is_read: bool,
    owns_sq_slot: bool,
}

/// Fair-share fabric state threaded through the driver. In FIFO mode
/// (`model == FabricModel::Fifo`) everything here is inert and messages
/// take the legacy `Link::transit` path.
struct FabricRt {
    model: FabricModel,
    fair: Option<FairShareFabric>,
    /// Messages owned by the allocator, by transfer token.
    pending: HashMap<u64, PendingTx>,
    next_token: u64,
    /// The scheduled head-completion event per active flow. Entries are
    /// removed when the event fires, so a cancel here always targets a
    /// still-pending event (the scheduler's lazy-cancel contract).
    head_events: HashMap<FlowKey, EventId>,
}

impl FabricRt {
    fn fifo() -> Self {
        FabricRt {
            model: FabricModel::Fifo,
            fair: None,
            pending: HashMap::new(),
            next_token: 0,
            head_events: HashMap::new(),
        }
    }
}

/// Cancels and reschedules head-completion events after the allocator
/// re-sped flows. `finish` can round to the past-equal instant; clamp
/// to `now` so the scheduler's monotonic contract holds.
fn apply_flow_changes(
    sched: &mut Scheduler<Ev>,
    head_events: &mut HashMap<FlowKey, EventId>,
    now: SimTime,
    changes: Vec<(FlowKey, SimTime)>,
) {
    for (key, finish) in changes {
        if let Some(ev) = head_events.remove(&key) {
            sched.cancel(ev);
        }
        let id = sched.schedule_at(
            finish.max(now),
            Ev::FlowHeadDone {
                src: key.0,
                dst: key.1,
            },
        );
        head_events.insert(key, id);
    }
}

/// RC transport retry period before a lost message fails the QP
/// (7 retries × a few ms on real hardware; one representative value).
const RETRY_PERIOD: SimDuration = SimDuration::from_millis(20);

struct NodeRuntime {
    hca: HcaCore,
    cpu: CpuMeter,
    host: HostModel,
    wake_scheduled: bool,
    rng: Xoshiro256,
}

impl NodeRuntime {
    fn jittered(&mut self, work: SimDuration) -> SimDuration {
        if self.host.jitter_frac > 0.0 && !work.is_zero() {
            let u = self.rng.next_f64();
            let factor = 1.0 + self.host.jitter_frac * (2.0 * u - 1.0);
            SimDuration::from_nanos((work.as_nanos() as f64 * factor).round().max(0.0) as u64)
        } else {
            work
        }
    }

    /// Charges CPU work with the host model's scheduling jitter applied.
    fn charge(&mut self, now: SimTime, work: SimDuration) -> SimTime {
        let w = self.jittered(work);
        self.cpu.charge(now, w)
    }

    /// Computes when wake-event processing may begin: a process that was
    /// asleep pays the completion-channel wakeup latency, plus an
    /// occasional scheduling stall (heavy-tail OS noise). Neither is
    /// busy time.
    fn wake_start(&mut self, now: SimTime) -> SimTime {
        if self.host.busy_poll {
            // Spinning on the CQ: events are noticed immediately.
            return now;
        }
        if self.cpu.free_at() >= now {
            // Still (or just) busy: no sleep happened, processing
            // continues as soon as the core frees up.
            return now;
        }
        let mut delay = self.jittered(self.host.wakeup_latency);
        if self.host.stall_prob > 0.0 && self.rng.next_f64() < self.host.stall_prob {
            let extra = self.rng.next_below(self.host.stall_max.as_nanos() + 1);
            delay += SimDuration::from_nanos(extra);
        }
        now + delay
    }
}

/// Outcome of a simulation run.
#[derive(Clone, Copy, Debug)]
pub struct RunOutcome {
    /// Virtual time when the loop stopped.
    pub end: SimTime,
    /// True if every app reported done; false if the event queue drained
    /// or the time limit was hit first.
    pub completed: bool,
    /// Total events delivered.
    pub events: u64,
}

/// The discrete-event fabric driver.
pub struct SimNet {
    sched: Scheduler<Ev>,
    nodes: Vec<NodeRuntime>,
    links: HashMap<(u32, u32), Link>,
    fabric: FabricRt,
    fatal: Vec<String>,
    panic_on_fatal: bool,
    host_seed: u64,
    trace: TraceRing,
    down_links: std::collections::HashSet<(u32, u32)>,
}

impl Default for SimNet {
    fn default() -> Self {
        Self::new()
    }
}

impl SimNet {
    /// An empty fabric.
    pub fn new() -> Self {
        SimNet {
            sched: Scheduler::new(),
            nodes: Vec::new(),
            links: HashMap::new(),
            fabric: FabricRt::fifo(),
            fatal: Vec::new(),
            panic_on_fatal: true,
            host_seed: 0x5EED,
            trace: TraceRing::disabled(),
            down_links: std::collections::HashSet::new(),
        }
    }

    /// Enables event tracing, retaining the last `capacity` records.
    /// Dump with [`SimNet::dump_trace`]; invaluable when a protocol run
    /// misbehaves.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = TraceRing::new(capacity);
    }

    /// Renders the retained trace, one event per line.
    pub fn dump_trace(&self) -> String {
        self.trace.dump()
    }

    /// Sets the seed for host-side CPU jitter streams. Must be called
    /// before nodes are added; each node derives an independent stream.
    pub fn set_host_seed(&mut self, seed: u64) {
        assert!(self.nodes.is_empty(), "set_host_seed must precede add_node");
        self.host_seed = seed;
    }

    /// Adds a node with the given host cost model and HCA parameters.
    pub fn add_node(&mut self, host: HostModel, hca: HcaConfig) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        let rng = Xoshiro256::new(self.host_seed ^ (0x9E37_79B9 * (id.0 as u64 + 1)));
        self.nodes.push(NodeRuntime {
            hca: HcaCore::new(id, hca),
            cpu: CpuMeter::new(),
            host,
            wake_scheduled: false,
            rng,
        });
        id
    }

    /// Selects the bandwidth-contention model. Defaults to
    /// [`FabricModel::Fifo`] (private per-pair serializing links).
    /// [`FabricModel::FairShare`] runs every transfer through the
    /// flow-level max-min allocator in [`simnet::fabric`] instead:
    /// concurrent flows split NIC and core capacity and re-speed as
    /// flows arrive and leave. Must be called before any links are
    /// connected so capacities register against the chosen model.
    pub fn set_fabric(&mut self, model: FabricModel) {
        assert!(
            self.links.is_empty(),
            "set_fabric must precede connect_nodes"
        );
        self.fabric.fair = match &model {
            FabricModel::Fifo => None,
            FabricModel::FairShare(cfg) => Some(FairShareFabric::new(cfg.clone())),
        };
        self.fabric.model = model;
    }

    /// The active bandwidth-contention model.
    pub fn fabric_model(&self) -> &FabricModel {
        &self.fabric.model
    }

    /// Per-flow telemetry from the fair-share allocator (achieved bps,
    /// re-speed counts, Jain fairness index). `None` in FIFO mode.
    pub fn fabric_stats(&self) -> Option<FabricStats> {
        self.fabric.fair.as_ref().map(|f| f.stats())
    }

    /// Connects two nodes with symmetric links built from `cfg`. The
    /// jitter RNG seeds are derived from `seed` per direction.
    pub fn connect_nodes(&mut self, a: NodeId, b: NodeId, cfg: LinkConfig, seed: u64) {
        self.connect_nodes_asymmetric(a, b, cfg.clone(), cfg, seed);
    }

    /// Connects two nodes with different characteristics per direction
    /// (e.g. an asymmetric WAN: fat downstream, thin upstream).
    pub fn connect_nodes_asymmetric(
        &mut self,
        a: NodeId,
        b: NodeId,
        a_to_b: LinkConfig,
        b_to_a: LinkConfig,
        seed: u64,
    ) {
        if let Some(fair) = &mut self.fabric.fair {
            fair.register_link(a.0, b.0, a_to_b.bandwidth_bps);
            fair.register_link(b.0, a.0, b_to_a.bandwidth_bps);
        }
        self.links
            .insert((a.0, b.0), Link::new(a_to_b, seed.wrapping_mul(2)));
        self.links
            .insert((b.0, a.0), Link::new(b_to_a, seed.wrapping_mul(2) + 1));
    }

    /// By default a [`Effect::Fatal`] (RNR, remote access error) panics,
    /// treating it as a protocol bug. Tests that *expect* violations can
    /// turn this off and inspect [`SimNet::fatal_errors`].
    pub fn set_panic_on_fatal(&mut self, panic_on_fatal: bool) {
        self.panic_on_fatal = panic_on_fatal;
    }

    /// Fatal errors collected while `panic_on_fatal` is off.
    pub fn fatal_errors(&self) -> &[String] {
        &self.fatal
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// CPU usage of `node` over its current measurement window.
    pub fn cpu_usage(&self, node: NodeId) -> f64 {
        self.nodes[node.index()].cpu.usage(self.sched.now())
    }

    /// Resets `node`'s CPU measurement window at the current time.
    pub fn cpu_window_reset(&mut self, node: NodeId) {
        let now = self.sched.now();
        self.nodes[node.index()].cpu.window_reset(now);
    }

    /// Total busy time charged to `node`.
    pub fn cpu_busy_total(&self, node: NodeId) -> SimDuration {
        self.nodes[node.index()].cpu.busy_total()
    }

    /// Payload bytes carried so far on the directed link `a → b`.
    pub fn link_bytes(&self, a: NodeId, b: NodeId) -> u64 {
        self.links
            .get(&(a.0, b.0))
            .map(|l| l.bytes_sent())
            .unwrap_or(0)
    }

    /// Fault injection: takes the *directed* link `a → b` down or up.
    /// Messages in flight still arrive (they are already on the wire);
    /// messages transmitted while the link is down are lost, and after
    /// the transport retry period the sending QP fails with
    /// `RnrRetryExceeded`-style transport errors, flushing its receives
    /// — the observable behaviour of RC retry exhaustion.
    pub fn set_link_up(&mut self, a: NodeId, b: NodeId, up: bool) {
        if up {
            self.down_links.remove(&(a.0, b.0));
        } else {
            self.down_links.insert((a.0, b.0));
        }
    }

    /// Fault injection: fails a QP (error state + receive flush) at the
    /// current virtual time. Flushed completions wake the node's app
    /// like any other completion.
    pub fn inject_qp_error(&mut self, node: NodeId, qpn: QpNum) -> Result<()> {
        let now = self.sched.now();
        let effects = self.nodes[node.index()].hca.fail_qp(qpn)?;
        self.apply_effects(node, effects, now);
        Ok(())
    }

    /// Runs setup code against a node outside the event loop (time stays
    /// at the current clock; CPU is not charged). Used by harnesses to
    /// register memory and build connections before starting apps.
    pub fn with_api<R>(&mut self, node: NodeId, f: impl FnOnce(&mut NodeApi<'_>) -> R) -> R {
        let now = self.sched.now();
        let SimNet {
            sched,
            nodes,
            links,
            fabric,
            ..
        } = self;
        let rt = &mut nodes[node.index()];
        let mut api = NodeApi {
            node,
            rt,
            links,
            sched,
            fabric,
            cpu_now: now,
        };
        f(&mut api)
    }

    /// Runs the event loop until every app is done, the queue drains, or
    /// the virtual clock passes `limit`.
    ///
    /// `apps[i]` is the application for `NodeId(i)`; the slice length must
    /// match the node count.
    pub fn run(&mut self, apps: &mut [&mut dyn NodeApp], limit: SimTime) -> RunOutcome {
        assert_eq!(apps.len(), self.nodes.len(), "one app per node is required");

        // Start phase.
        for (i, app) in apps.iter_mut().enumerate() {
            let node = NodeId(i as u32);
            let SimNet {
                sched,
                nodes,
                links,
                fabric,
                ..
            } = self;
            let rt = &mut nodes[node.index()];
            let cpu_now = sched.now().max(rt.cpu.free_at());
            let mut api = NodeApi {
                node,
                rt,
                links,
                sched,
                fabric,
                cpu_now,
            };
            app.on_start(&mut api);
        }

        loop {
            if apps.iter().all(|a| a.is_done()) {
                return RunOutcome {
                    end: self.sched.now(),
                    completed: true,
                    events: self.sched.delivered(),
                };
            }
            let Some((now, ev)) = self.sched.pop() else {
                return RunOutcome {
                    end: self.sched.now(),
                    completed: apps.iter().all(|a| a.is_done()),
                    events: self.sched.delivered(),
                };
            };
            if now > limit {
                return RunOutcome {
                    end: now,
                    completed: false,
                    events: self.sched.delivered(),
                };
            }
            match ev {
                Ev::Deliver { msg } => {
                    let dst = msg.dst_node();
                    if self.down_links.contains(&(msg.src_node().0, dst.0)) {
                        // Lost on the wire. RC would retransmit and give
                        // up after the retry period: fail the sender QP.
                        if self.trace.is_enabled() {
                            self.trace.push(
                                now,
                                "dropped",
                                format!("{:?}->{:?} {}", msg.src_node(), dst, op_tag(&msg.op)),
                            );
                        }
                        let (src_node, src_qpn) = msg.src;
                        self.sched.schedule_after(
                            RETRY_PERIOD,
                            Ev::QpFail {
                                node: src_node,
                                qpn: src_qpn,
                            },
                        );
                        continue;
                    }
                    if self.trace.is_enabled() {
                        self.trace.push(
                            now,
                            "deliver",
                            format!(
                                "{:?}->{:?} {} len={}",
                                msg.src_node(),
                                dst,
                                op_tag(&msg.op),
                                msg.payload_len()
                            ),
                        );
                    }
                    let effects = self.nodes[dst.index()].hca.handle_wire(msg);
                    self.apply_effects(dst, effects, now);
                }
                Ev::TxDone { node, qpn, cqe } => {
                    let mut effects = Vec::new();
                    self.nodes[node.index()]
                        .hca
                        .tx_finished(qpn, cqe, &mut effects);
                    self.apply_effects(node, effects, now);
                }
                Ev::Wake { node } => {
                    if self.trace.is_enabled() {
                        self.trace.push(now, "wake", format!("{node:?}"));
                    }
                    let SimNet {
                        sched,
                        nodes,
                        links,
                        fabric,
                        ..
                    } = self;
                    let rt = &mut nodes[node.index()];
                    rt.wake_scheduled = false;
                    // Wakeup latency (sleeping process) + the per-wake
                    // event-channel processing cost.
                    let start = rt.wake_start(now);
                    let wakeup = rt.host.event_wakeup;
                    let cpu_now = rt.charge(start, wakeup);
                    let mut api = NodeApi {
                        node,
                        rt,
                        links,
                        sched,
                        fabric,
                        cpu_now,
                    };
                    apps[node.index()].on_wake(&mut api);
                }
                Ev::Timer { node, token } => {
                    let SimNet {
                        sched,
                        nodes,
                        links,
                        fabric,
                        ..
                    } = self;
                    let rt = &mut nodes[node.index()];
                    let cpu_now = now.max(rt.cpu.free_at());
                    let mut api = NodeApi {
                        node,
                        rt,
                        links,
                        sched,
                        fabric,
                        cpu_now,
                    };
                    apps[node.index()].on_timer(&mut api, token);
                }
                Ev::QpFail { node, qpn } => {
                    // Retry exhaustion for a message lost on a downed
                    // link. The QP may already be in the error state
                    // (several losses); that is fine.
                    if let Ok(effects) = self.nodes[node.index()].hca.fail_qp(qpn) {
                        self.apply_effects(node, effects, now);
                    }
                }
                Ev::FabricStart { token } => {
                    let pending = self
                        .fabric
                        .pending
                        .get(&token)
                        .expect("FabricStart for unknown transfer");
                    let src = pending.msg.src_node();
                    let dst = pending.msg.dst_node();
                    let payload = pending.msg.payload_len();
                    let link = self
                        .links
                        .get_mut(&(src.0, dst.0))
                        .unwrap_or_else(|| panic!("no link from {src:?} to {dst:?}"));
                    // Utilisation gauges still live on the per-pair link;
                    // timing moves to the allocator.
                    link.account(payload);
                    let wire_bytes = link.config().wire_bytes(payload);
                    let fair = self.fabric.fair.as_mut().expect("fair-share mode");
                    let changes = fair.submit(
                        now,
                        src.0,
                        dst.0,
                        Transfer {
                            token,
                            wire_bytes,
                            payload_bytes: payload,
                        },
                    );
                    apply_flow_changes(&mut self.sched, &mut self.fabric.head_events, now, changes);
                }
                Ev::FlowHeadDone { src, dst } => {
                    self.fabric.head_events.remove(&(src, dst));
                    let link_cfg = self
                        .links
                        .get(&(src, dst))
                        .expect("flow on unknown link")
                        .config();
                    let (prop, jitter) = (link_cfg.propagation, link_cfg.jitter);
                    let fair = self.fabric.fair.as_mut().expect("fair-share mode");
                    let (transfer, arrival, changes) = fair.complete(now, src, dst, prop, jitter);
                    let pending = self
                        .fabric
                        .pending
                        .remove(&transfer.token)
                        .expect("completed transfer has no message");
                    let (src_node, src_qpn) = pending.msg.src;
                    // Same RC ack model as the FIFO path: the SQ slot
                    // retires when the responder's hardware ack returns.
                    if pending.owns_sq_slot && !pending.is_read {
                        let wqe_process = self.nodes[src_node.index()].hca.config().wqe_process;
                        let acked = arrival + wqe_process + prop;
                        self.sched.schedule_at(
                            acked,
                            Ev::TxDone {
                                node: src_node,
                                qpn: src_qpn,
                                cqe: pending.cqe,
                            },
                        );
                    }
                    self.sched
                        .schedule_at(arrival, Ev::Deliver { msg: pending.msg });
                    apply_flow_changes(&mut self.sched, &mut self.fabric.head_events, now, changes);
                }
            }
        }
    }

    fn apply_effects(&mut self, node: NodeId, effects: Vec<Effect>, now: SimTime) {
        for effect in effects {
            match effect {
                Effect::Completion { .. } => {
                    let SimNet { sched, nodes, .. } = self;
                    schedule_wake(&mut nodes[node.index()], sched, node, now);
                }
                Effect::Transmit(msg) => {
                    // Responder-generated message (RDMA READ response):
                    // the HCA emits it without CPU involvement.
                    let SimNet {
                        sched,
                        nodes,
                        links,
                        fabric,
                        ..
                    } = self;
                    let rt = &mut nodes[node.index()];
                    launch(
                        rt,
                        links,
                        sched,
                        fabric,
                        PreparedSend {
                            msg,
                            completion_at_tx: None,
                            is_read: false,
                        },
                        now,
                        // READ responses do not occupy an SQ slot.
                        false,
                    );
                }
                Effect::Fatal {
                    qpn,
                    status,
                    detail,
                } => {
                    let text = format!("node {node:?} qp {qpn:?}: {status:?}: {detail}");
                    if self.panic_on_fatal {
                        panic!("fatal verbs error: {text}");
                    }
                    self.fatal.push(text);
                }
            }
        }
    }
}

fn schedule_wake(rt: &mut NodeRuntime, sched: &mut Scheduler<Ev>, node: NodeId, now: SimTime) {
    if rt.wake_scheduled {
        return;
    }
    let at = now.max(rt.cpu.free_at());
    sched.schedule_at(at, Ev::Wake { node });
    rt.wake_scheduled = true;
}

/// Short label for a wire operation in trace output.
fn op_tag(op: &crate::wire::WireOp) -> &'static str {
    match op {
        crate::wire::WireOp::Send { .. } => "send",
        crate::wire::WireOp::Write { .. } => "write",
        crate::wire::WireOp::WriteImm { .. } => "write-imm",
        crate::wire::WireOp::ReadReq { .. } => "read-req",
        crate::wire::WireOp::ReadResp { .. } => "read-resp",
    }
}

/// Pushes a prepared send through the HCA pipeline and onto the fabric.
/// In FIFO mode the message serializes on its private [`Link`] here and
/// the delivery/ack events are scheduled directly; in fair-share mode
/// it is handed to the flow allocator at pipeline exit (a
/// `FabricStart` event) and the events are scheduled when its flow's
/// head completes. `owns_sq_slot` is false for HCA-originated
/// responses, which bypass the send queue.
fn launch(
    rt: &mut NodeRuntime,
    links: &mut HashMap<(u32, u32), Link>,
    sched: &mut Scheduler<Ev>,
    fabric: &mut FabricRt,
    prepared: PreparedSend,
    post_time: SimTime,
    owns_sq_slot: bool,
) {
    let (src_node, src_qpn) = prepared.msg.src;
    let dst_node = prepared.msg.dst_node();
    let wqe_process = rt.hca.config().wqe_process;

    // Serialize on the QP's HCA pipeline.
    let start = if owns_sq_slot {
        let qp = rt.hca.qp_mut(src_qpn).expect("launch on unknown QP");
        let start = post_time.max(qp.hca_free_at);
        qp.hca_free_at = start + wqe_process;
        start
    } else {
        post_time
    };
    let proc_done = start + wqe_process;

    if fabric.fair.is_some() {
        // Fair-share mode: the wire phase belongs to the allocator.
        let token = fabric.next_token;
        fabric.next_token += 1;
        fabric.pending.insert(
            token,
            PendingTx {
                msg: prepared.msg,
                cqe: prepared.completion_at_tx,
                is_read: prepared.is_read,
                owns_sq_slot,
            },
        );
        sched.schedule_at(proc_done, Ev::FabricStart { token });
        return;
    }

    let link = links
        .get_mut(&(src_node.0, dst_node.0))
        .unwrap_or_else(|| panic!("no link from {src_node:?} to {dst_node:?}"));
    let payload_len = prepared.msg.payload_len();
    let back_prop = link.config().propagation;
    let arrival = link.transit(proc_done, payload_len);

    // Reliable-connected semantics: the send completes (and its SQ slot
    // retires) when the responder HCA's hardware acknowledgment returns
    // — one propagation after arrival plus the responder's WQE
    // turnaround. READ requests keep their slot until the response.
    if owns_sq_slot && !prepared.is_read {
        let acked = arrival + wqe_process + back_prop;
        sched.schedule_at(
            acked,
            Ev::TxDone {
                node: src_node,
                qpn: src_qpn,
                cqe: prepared.completion_at_tx,
            },
        );
    }
    sched.schedule_at(arrival, Ev::Deliver { msg: prepared.msg });
}

/// Per-node handle passed to [`NodeApp`] callbacks and
/// [`SimNet::with_api`] closures.
pub struct NodeApi<'a> {
    node: NodeId,
    rt: &'a mut NodeRuntime,
    links: &'a mut HashMap<(u32, u32), Link>,
    sched: &'a mut Scheduler<Ev>,
    fabric: &'a mut FabricRt,
    /// This handler's CPU-time cursor: verbs posts issued through the api
    /// are stamped at this instant, which advances as work is charged.
    cpu_now: SimTime,
}

impl NodeApi<'_> {
    /// The node this api controls.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The handler's current CPU-time cursor.
    pub fn now(&self) -> SimTime {
        self.cpu_now
    }

    /// The node's host cost model.
    pub fn host(&self) -> &HostModel {
        &self.rt.host
    }

    /// Charges CPU work (with host jitter), advancing the cursor.
    pub fn charge(&mut self, work: SimDuration) {
        self.cpu_now = self.rt.charge(self.cpu_now, work);
    }

    /// Registers a memory region (setup cost not modelled: registration
    /// happens outside the timed window in the paper's experiments).
    pub fn register_mr(&mut self, len: usize, access: Access) -> MrInfo {
        self.rt.hca.register_mr(len, access)
    }

    /// Deregisters a memory region.
    pub fn hca_deregister(&mut self, key: MrKey) -> Result<()> {
        self.rt.hca.deregister_mr(key)
    }

    /// Registers a memory region, charging the host's pin-down cost
    /// (`ibv_reg_mr` kernel transition + per-page pinning). The mempool
    /// acquire path uses this so registration churn shows up in virtual
    /// time; setup-phase registrations keep using
    /// [`NodeApi::register_mr`].
    pub fn register_mr_charged(&mut self, len: usize, access: Access) -> MrInfo {
        let cost = self.rt.host.mr_register_time(len as u64);
        self.charge(cost);
        self.rt.hca.register_mr(len, access)
    }

    /// Deregisters a memory region, charging the host's unpin cost.
    pub fn deregister_mr_charged(&mut self, key: MrKey) -> Result<()> {
        let len = self.rt.hca.mem().len_of(key).unwrap_or(0);
        let cost = self.rt.host.mr_deregister_time(len as u64);
        self.charge(cost);
        self.rt.hca.deregister_mr(key)
    }

    /// Number of live memory registrations on this node (leak checks).
    pub fn mr_count(&self) -> usize {
        self.rt.hca.mem().len()
    }

    /// Creates a completion queue.
    pub fn create_cq(&mut self, depth: usize) -> CqId {
        self.rt.hca.create_cq(depth)
    }

    /// Creates a queue pair.
    pub fn create_qp(&mut self, send_cq: CqId, recv_cq: CqId, caps: QpCaps) -> Result<QpNum> {
        self.rt.hca.create_qp(send_cq, recv_cq, caps)
    }

    /// Connects a queue pair to a remote peer.
    pub fn connect_qp(&mut self, qpn: QpNum, remote: (NodeId, QpNum)) -> Result<()> {
        self.rt.hca.connect_qp(qpn, remote)
    }

    /// Posts a send work request: charges the post overhead, validates,
    /// and launches the message through the HCA pipeline and link.
    pub fn post_send(&mut self, qpn: QpNum, wr: SendWr) -> Result<()> {
        let overhead = self.rt.host.post_overhead;
        self.charge(overhead);
        let prepared = self.rt.hca.prepare_send(qpn, wr)?;
        launch(
            self.rt,
            self.links,
            self.sched,
            self.fabric,
            prepared,
            self.cpu_now,
            true,
        );
        Ok(())
    }

    /// Posts a chain of send work requests as one postlist: the
    /// doorbell/WQE-build overhead is charged **once** for the whole
    /// chain — the point of doorbell batching — while each WQE still
    /// serializes through the QP's HCA pipeline individually. Stops at
    /// the first invalid WR and returns its error; WRs before it are
    /// already on the wire (the `ibv_post_send` `bad_wr` contract).
    pub fn post_send_list(&mut self, qpn: QpNum, wrs: Vec<SendWr>) -> Result<()> {
        if wrs.is_empty() {
            return Ok(());
        }
        let overhead = self.rt.host.post_overhead;
        self.charge(overhead);
        for wr in wrs {
            let prepared = self.rt.hca.prepare_send(qpn, wr)?;
            launch(
                self.rt,
                self.links,
                self.sched,
                self.fabric,
                prepared,
                self.cpu_now,
                true,
            );
        }
        Ok(())
    }

    /// Posts a receive work request.
    pub fn post_recv(&mut self, qpn: QpNum, wr: RecvWr) -> Result<()> {
        let overhead = self.rt.host.post_overhead;
        self.charge(overhead);
        self.rt.hca.post_recv(qpn, wr)
    }

    /// Polls completions, charging one poll overhead per call.
    pub fn poll_cq(&mut self, cq: CqId, max: usize, out: &mut Vec<Cqe>) -> Result<usize> {
        let overhead = self.rt.host.poll_overhead;
        self.charge(overhead);
        self.rt.hca.poll_cq(cq, max, out)
    }

    /// Arms a CQ for one notification.
    pub fn arm_cq(&mut self, cq: CqId) -> Result<bool> {
        self.rt.hca.arm_cq(cq)
    }

    /// Writes application data into registered memory without charging
    /// CPU (setup/fill outside the measured path).
    pub fn write_mr(&mut self, key: MrKey, addr: u64, data: &[u8]) -> Result<()> {
        self.rt.hca.mem_mut().app_write(key, addr, data)
    }

    /// Reads application data from registered memory without charging CPU.
    pub fn read_mr(&self, key: MrKey, addr: u64, buf: &mut [u8]) -> Result<()> {
        self.rt.hca.mem().app_read(key, addr, buf)
    }

    /// Copies between registered regions, charging the host memcpy cost.
    /// This is the EXS intermediate-buffer → user-buffer copy.
    pub fn copy_mr(
        &mut self,
        src_key: MrKey,
        src_addr: u64,
        dst_key: MrKey,
        dst_addr: u64,
        len: u64,
    ) -> Result<u64> {
        let cost = self.rt.host.memcpy_time(len);
        self.charge(cost);
        self.rt
            .hca
            .mem_mut()
            .local_copy(src_key, src_addr, dst_key, dst_addr, len)
    }

    /// Schedules an [`NodeApp::on_timer`] callback `delay` after the
    /// current CPU cursor.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.sched.schedule_at(
            self.cpu_now + delay,
            Ev::Timer {
                node: self.node,
                token,
            },
        );
    }

    /// Direct read-only access to the HCA (stats, QP state).
    pub fn hca(&self) -> &HcaCore {
        &self.rt.hca
    }

    /// Number of posted, unconsumed receives on a QP.
    pub fn rq_len(&self, qpn: QpNum) -> usize {
        self.rt.hca.qp(qpn).map(|q| q.rq_len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Sge, WcOpcode};

    fn quiet_host() -> HostModel {
        HostModel::free()
    }

    fn fast_link() -> LinkConfig {
        LinkConfig::simple(100_000_000_000, SimDuration::from_micros(1))
    }

    struct Idle;
    impl NodeApp for Idle {
        fn on_start(&mut self, _api: &mut NodeApi<'_>) {}
        fn on_wake(&mut self, _api: &mut NodeApi<'_>) {}
        fn is_done(&self) -> bool {
            true
        }
    }

    /// Sends `count` messages, one per send completion.
    struct Pinger {
        qpn: Option<QpNum>,
        cq: Option<CqId>,
        mr: Option<MrInfo>,
        sent: u32,
        count: u32,
        completions: u32,
    }

    impl Pinger {
        fn new(count: u32) -> Self {
            Pinger {
                qpn: None,
                cq: None,
                mr: None,
                sent: 0,
                count,
                completions: 0,
            }
        }
    }

    impl NodeApp for Pinger {
        fn on_start(&mut self, api: &mut NodeApi<'_>) {
            let sge = self.mr.unwrap().sge(0, 64);
            api.post_send(self.qpn.unwrap(), SendWr::send(0, sge))
                .unwrap();
            self.sent = 1;
        }
        fn on_wake(&mut self, api: &mut NodeApi<'_>) {
            let mut cqes = Vec::new();
            api.poll_cq(self.cq.unwrap(), usize::MAX, &mut cqes)
                .unwrap();
            for cqe in cqes {
                assert_eq!(cqe.opcode, WcOpcode::Send);
                self.completions += 1;
                if self.sent < self.count {
                    let sge = self.mr.unwrap().sge(0, 64);
                    api.post_send(self.qpn.unwrap(), SendWr::send(self.sent as u64, sge))
                        .unwrap();
                    self.sent += 1;
                }
            }
        }
        fn is_done(&self) -> bool {
            self.completions == self.count
        }
    }

    /// Posts receives and counts arrivals.
    struct Ponger {
        qpn: Option<QpNum>,
        cq: Option<CqId>,
        mr: Option<MrInfo>,
        received: u32,
        expect: u32,
    }

    impl NodeApp for Ponger {
        fn on_start(&mut self, _api: &mut NodeApi<'_>) {}
        fn on_wake(&mut self, api: &mut NodeApi<'_>) {
            let mut cqes = Vec::new();
            api.poll_cq(self.cq.unwrap(), usize::MAX, &mut cqes)
                .unwrap();
            for cqe in cqes {
                assert_eq!(cqe.opcode, WcOpcode::Recv);
                self.received += 1;
                // Replenish the receive so the sender never hits RNR.
                let sge = self.mr.unwrap().sge(0, 64);
                api.post_recv(self.qpn.unwrap(), RecvWr::new(cqe.wr_id + 1, sge))
                    .unwrap();
            }
        }
        fn is_done(&self) -> bool {
            self.received >= self.expect
        }
    }

    fn build_pair(net: &mut SimNet) -> (NodeId, NodeId) {
        let a = net.add_node(quiet_host(), HcaConfig::default());
        let b = net.add_node(quiet_host(), HcaConfig::default());
        net.connect_nodes(a, b, fast_link(), 7);
        (a, b)
    }

    #[test]
    fn ping_stream_delivers_all() {
        let mut net = SimNet::new();
        let (a, b) = build_pair(&mut net);

        let mut pinger = Pinger::new(10);
        let mut ponger = Ponger {
            qpn: None,
            cq: None,
            mr: None,
            received: 0,
            expect: 10,
        };

        // Setup outside the loop.
        let (a_qp, a_cq, a_mr) = net.with_api(a, |api| {
            let scq = api.create_cq(64);
            let rcq = api.create_cq(64);
            let qp = api.create_qp(scq, rcq, QpCaps::default()).unwrap();
            let mr = api.register_mr(64, Access::NONE);
            (qp, scq, mr)
        });
        let (b_qp, b_cq, b_mr) = net.with_api(b, |api| {
            let scq = api.create_cq(64);
            let rcq = api.create_cq(64);
            let qp = api.create_qp(scq, rcq, QpCaps::default()).unwrap();
            let mr = api.register_mr(64, Access::LOCAL_WRITE);
            (qp, rcq, mr)
        });
        net.with_api(a, |api| api.connect_qp(a_qp, (b, b_qp)).unwrap());
        net.with_api(b, |api| {
            api.connect_qp(b_qp, (a, a_qp)).unwrap();
            // Pre-post plenty of receives.
            for i in 0..16 {
                let sge = Sge::new(b_mr.addr, 64, b_mr.key);
                api.post_recv(b_qp, RecvWr::new(i, sge)).unwrap();
            }
        });
        pinger.qpn = Some(a_qp);
        pinger.cq = Some(a_cq);
        pinger.mr = Some(a_mr);
        ponger.qpn = Some(b_qp);
        ponger.cq = Some(b_cq);
        ponger.mr = Some(b_mr);

        let outcome = net.run(&mut [&mut pinger, &mut ponger], SimTime::from_secs(1));
        assert!(outcome.completed, "run did not finish: {outcome:?}");
        assert_eq!(pinger.completions, 10);
        assert_eq!(ponger.received, 10);
        assert_eq!(net.link_bytes(a, b), 640);
        // Time passed: 10 messages through a 1 us link.
        assert!(net.now() > SimTime::from_micros(1));
    }

    #[test]
    fn postlist_charges_one_doorbell_and_batch_retires_slots() {
        // One node pays 1 us per doorbell; 7 unsignaled WRITEs + 1
        // signaled WRITE posted as a single postlist must charge that
        // microsecond exactly once, and the signaled completion must
        // retire all eight SQ slots.
        let mut host = HostModel::free();
        host.post_overhead = SimDuration::from_micros(1);
        let mut net = SimNet::new();
        let a = net.add_node(host, HcaConfig::default());
        let b = net.add_node(HostModel::free(), HcaConfig::default());
        net.connect_nodes(a, b, fast_link(), 3);

        let (a_qp, a_mr) = net.with_api(a, |api| {
            let scq = api.create_cq(64);
            let rcq = api.create_cq(64);
            let qp = api.create_qp(scq, rcq, QpCaps::default()).unwrap();
            (qp, api.register_mr(64, Access::NONE))
        });
        let (b_qp, b_mr) = net.with_api(b, |api| {
            let scq = api.create_cq(64);
            let rcq = api.create_cq(64);
            let qp = api.create_qp(scq, rcq, QpCaps::default()).unwrap();
            (qp, api.register_mr(64, Access::local_remote_write()))
        });
        net.with_api(a, |api| api.connect_qp(a_qp, (b, b_qp)).unwrap());
        net.with_api(b, |api| api.connect_qp(b_qp, (a, a_qp)).unwrap());

        net.with_api(a, |api| {
            let remote = crate::types::RemoteAddr {
                addr: b_mr.addr,
                rkey: b_mr.key,
            };
            let wrs: Vec<SendWr> = (0..8)
                .map(|i| {
                    let wr = SendWr::write(i, a_mr.sge(0, 8), remote);
                    if i < 7 {
                        wr.unsignaled()
                    } else {
                        wr
                    }
                })
                .collect();
            api.post_send_list(a_qp, wrs).unwrap();
            assert_eq!(api.hca().qp(a_qp).unwrap().sq_outstanding(), 8);
        });
        assert_eq!(net.cpu_busy_total(a), SimDuration::from_micros(1));

        // Drain the event queue (never-done apps keep the loop running
        // until no events remain).
        struct Drain;
        impl NodeApp for Drain {
            fn on_start(&mut self, _api: &mut NodeApi<'_>) {}
            fn on_wake(&mut self, _api: &mut NodeApi<'_>) {}
        }
        let mut ia = Drain;
        let mut ib = Drain;
        net.run(&mut [&mut ia, &mut ib], SimTime::from_secs(1));
        net.with_api(a, |api| {
            let qp = api.hca().qp(a_qp).unwrap();
            assert_eq!(qp.sq_outstanding(), 0, "signaled CQE retires the batch");
            assert_eq!(qp.sq_deferred(), 0);
        });
    }

    #[test]
    fn fair_share_ping_delivers_all_and_accounts_bytes() {
        // The FIFO ping test, re-run under the fair-share fabric: same
        // deliveries, same per-pair byte accounting, and the allocator
        // reports one active-then-drained flow per direction used.
        let mut net = SimNet::new();
        net.set_fabric(FabricModel::FairShare(
            simnet::fabric::FairShareConfig::new(7),
        ));
        let (a, b) = build_pair(&mut net);

        let mut pinger = Pinger::new(10);
        let mut ponger = Ponger {
            qpn: None,
            cq: None,
            mr: None,
            received: 0,
            expect: 10,
        };
        let (a_qp, a_cq, a_mr) = net.with_api(a, |api| {
            let scq = api.create_cq(64);
            let rcq = api.create_cq(64);
            let qp = api.create_qp(scq, rcq, QpCaps::default()).unwrap();
            let mr = api.register_mr(64, Access::NONE);
            (qp, scq, mr)
        });
        let (b_qp, b_cq, b_mr) = net.with_api(b, |api| {
            let scq = api.create_cq(64);
            let rcq = api.create_cq(64);
            let qp = api.create_qp(scq, rcq, QpCaps::default()).unwrap();
            let mr = api.register_mr(64, Access::LOCAL_WRITE);
            (qp, rcq, mr)
        });
        net.with_api(a, |api| api.connect_qp(a_qp, (b, b_qp)).unwrap());
        net.with_api(b, |api| {
            api.connect_qp(b_qp, (a, a_qp)).unwrap();
            for i in 0..16 {
                let sge = Sge::new(b_mr.addr, 64, b_mr.key);
                api.post_recv(b_qp, RecvWr::new(i, sge)).unwrap();
            }
        });
        pinger.qpn = Some(a_qp);
        pinger.cq = Some(a_cq);
        pinger.mr = Some(a_mr);
        ponger.qpn = Some(b_qp);
        ponger.cq = Some(b_cq);
        ponger.mr = Some(b_mr);

        let outcome = net.run(&mut [&mut pinger, &mut ponger], SimTime::from_secs(1));
        assert!(outcome.completed, "run did not finish: {outcome:?}");
        assert_eq!(pinger.completions, 10);
        assert_eq!(ponger.received, 10);
        assert_eq!(net.link_bytes(a, b), 640, "gauges survive the fair path");
        let stats = net.fabric_stats().expect("fair-share telemetry");
        let fwd = stats
            .flows
            .iter()
            .find(|f| f.src == a.0 && f.dst == b.0)
            .expect("a→b flow tracked");
        assert_eq!(fwd.bytes, 640);
        assert_eq!(fwd.transfers, 10);
        assert_eq!(stats.respeeds, 0, "ping-pong never has concurrent flows");
    }

    #[test]
    fn fifo_mode_reports_no_fabric_stats() {
        let net = SimNet::new();
        assert!(net.fabric_stats().is_none());
        assert_eq!(net.fabric_model(), &FabricModel::Fifo);
    }

    #[test]
    fn idle_network_terminates() {
        let mut net = SimNet::new();
        let (_a, _b) = build_pair(&mut net);
        let mut ia = Idle;
        let mut ib = Idle;
        let outcome = net.run(&mut [&mut ia, &mut ib], SimTime::from_secs(1));
        assert!(outcome.completed);
        assert_eq!(outcome.end, SimTime::ZERO);
    }

    #[test]
    fn fatal_collection_mode() {
        let mut net = SimNet::new();
        let (a, b) = build_pair(&mut net);
        net.set_panic_on_fatal(false);

        struct SendNoRecv {
            qpn: Option<QpNum>,
            mr: Option<MrInfo>,
        }
        impl NodeApp for SendNoRecv {
            fn on_start(&mut self, api: &mut NodeApi<'_>) {
                let sge = self.mr.unwrap().sge(0, 8);
                api.post_send(self.qpn.unwrap(), SendWr::send(1, sge))
                    .unwrap();
            }
            fn on_wake(&mut self, _api: &mut NodeApi<'_>) {}
            fn is_done(&self) -> bool {
                false
            }
        }

        let (a_qp, a_mr) = net.with_api(a, |api| {
            let scq = api.create_cq(8);
            let rcq = api.create_cq(8);
            let qp = api.create_qp(scq, rcq, QpCaps::default()).unwrap();
            (qp, api.register_mr(8, Access::NONE))
        });
        let b_qp = net.with_api(b, |api| {
            let scq = api.create_cq(8);
            let rcq = api.create_cq(8);
            api.create_qp(scq, rcq, QpCaps::default()).unwrap()
        });
        net.with_api(a, |api| api.connect_qp(a_qp, (b, b_qp)).unwrap());
        net.with_api(b, |api| api.connect_qp(b_qp, (a, a_qp)).unwrap());

        let mut sender = SendNoRecv {
            qpn: Some(a_qp),
            mr: Some(a_mr),
        };
        let mut idle = Idle;
        net.run(&mut [&mut sender, &mut idle], SimTime::from_secs(1));
        assert_eq!(net.fatal_errors().len(), 1);
        assert!(net.fatal_errors()[0].contains("no posted RECV"));
    }

    #[test]
    fn cpu_charges_shape_the_timeline() {
        // A host with a large per-post cost must stretch the run.
        let mut slow = HostModel::free();
        slow.post_overhead = SimDuration::from_micros(100);

        let mut net = SimNet::new();
        let a = net.add_node(slow, HcaConfig::default());
        let b = net.add_node(HostModel::free(), HcaConfig::default());
        net.connect_nodes(a, b, fast_link(), 1);

        let (a_qp, a_cq, a_mr) = net.with_api(a, |api| {
            let scq = api.create_cq(64);
            let rcq = api.create_cq(64);
            let qp = api.create_qp(scq, rcq, QpCaps::default()).unwrap();
            (qp, scq, api.register_mr(64, Access::NONE))
        });
        let (b_qp, b_cq, b_mr) = net.with_api(b, |api| {
            let scq = api.create_cq(64);
            let rcq = api.create_cq(64);
            let qp = api.create_qp(scq, rcq, QpCaps::default()).unwrap();
            (qp, rcq, api.register_mr(64, Access::LOCAL_WRITE))
        });
        net.with_api(a, |api| api.connect_qp(a_qp, (b, b_qp)).unwrap());
        net.with_api(b, |api| {
            api.connect_qp(b_qp, (a, a_qp)).unwrap();
            for i in 0..16 {
                let sge = Sge::new(b_mr.addr, 64, b_mr.key);
                api.post_recv(b_qp, RecvWr::new(i, sge)).unwrap();
            }
        });

        let mut pinger = Pinger::new(5);
        pinger.qpn = Some(a_qp);
        pinger.cq = Some(a_cq);
        pinger.mr = Some(a_mr);
        let mut ponger = Ponger {
            qpn: Some(b_qp),
            cq: Some(b_cq),
            mr: Some(b_mr),
            received: 0,
            expect: 5,
        };

        let outcome = net.run(&mut [&mut pinger, &mut ponger], SimTime::from_secs(1));
        assert!(outcome.completed);
        // 5 posts at 100 us each dominate the timeline.
        assert!(net.now() >= SimTime::from_micros(500));
        assert!(net.cpu_busy_total(a) >= SimDuration::from_micros(500));
        assert!(net.cpu_usage(a) > 0.9);
    }

    #[test]
    fn timers_fire() {
        struct TimerApp {
            fired: Vec<u64>,
        }
        impl NodeApp for TimerApp {
            fn on_start(&mut self, api: &mut NodeApi<'_>) {
                api.set_timer(SimDuration::from_micros(5), 1);
                api.set_timer(SimDuration::from_micros(1), 2);
            }
            fn on_wake(&mut self, _api: &mut NodeApi<'_>) {}
            fn on_timer(&mut self, _api: &mut NodeApi<'_>, token: u64) {
                self.fired.push(token);
            }
            fn is_done(&self) -> bool {
                self.fired.len() == 2
            }
        }
        let mut net = SimNet::new();
        let _a = net.add_node(HostModel::free(), HcaConfig::default());
        let mut app = TimerApp { fired: Vec::new() };
        let outcome = net.run(&mut [&mut app], SimTime::from_secs(1));
        assert!(outcome.completed);
        assert_eq!(app.fired, vec![2, 1]);
        assert_eq!(net.now(), SimTime::from_micros(5));
    }

    #[test]
    fn time_limit_stops_runaway() {
        struct Loopy;
        impl NodeApp for Loopy {
            fn on_start(&mut self, api: &mut NodeApi<'_>) {
                api.set_timer(SimDuration::from_micros(1), 0);
            }
            fn on_wake(&mut self, _api: &mut NodeApi<'_>) {}
            fn on_timer(&mut self, api: &mut NodeApi<'_>, _token: u64) {
                api.set_timer(SimDuration::from_micros(1), 0);
            }
        }
        let mut net = SimNet::new();
        let _ = net.add_node(HostModel::free(), HcaConfig::default());
        let mut app = Loopy;
        let outcome = net.run(&mut [&mut app], SimTime::from_millis(1));
        assert!(!outcome.completed);
        assert!(outcome.end >= SimTime::from_millis(1));
    }
}

#[cfg(test)]
mod wake_model_tests {
    use super::*;
    use crate::types::{Access, Sge, WcOpcode};

    fn latency_host() -> HostModel {
        HostModel {
            wakeup_latency: SimDuration::from_micros(10),
            ..HostModel::free()
        }
    }

    /// One message, event-notification host: the receiver's completion
    /// must be processed no earlier than arrival + wakeup latency.
    fn one_message_end(host_b: HostModel) -> SimTime {
        let mut net = SimNet::new();
        let a = net.add_node(HostModel::free(), HcaConfig::default());
        let b = net.add_node(host_b, HcaConfig::default());
        net.connect_nodes(
            a,
            b,
            LinkConfig::simple(10_000_000_000, SimDuration::from_micros(1)),
            0,
        );

        struct Shot {
            qpn: Option<QpNum>,
            mr: Option<MrInfo>,
        }
        impl NodeApp for Shot {
            fn on_start(&mut self, api: &mut NodeApi<'_>) {
                let sge = self.mr.unwrap().sge(0, 64);
                api.post_send(self.qpn.unwrap(), SendWr::send(1, sge))
                    .unwrap();
            }
            fn on_wake(&mut self, _api: &mut NodeApi<'_>) {}
            fn is_done(&self) -> bool {
                true
            }
        }
        struct Sink {
            cq: Option<CqId>,
            got_at: Option<SimTime>,
        }
        impl NodeApp for Sink {
            fn on_start(&mut self, _api: &mut NodeApi<'_>) {}
            fn on_wake(&mut self, api: &mut NodeApi<'_>) {
                let mut cqes = Vec::new();
                api.poll_cq(self.cq.unwrap(), usize::MAX, &mut cqes)
                    .unwrap();
                for c in cqes {
                    assert_eq!(c.opcode, WcOpcode::Recv);
                    // api.now() is the CPU cursor: it includes the
                    // wakeup latency, unlike the event timestamp.
                    self.got_at = Some(api.now());
                }
            }
            fn is_done(&self) -> bool {
                self.got_at.is_some()
            }
        }

        let (a_qp, a_mr) = net.with_api(a, |api| {
            let scq = api.create_cq(8);
            let rcq = api.create_cq(8);
            let qp = api.create_qp(scq, rcq, QpCaps::default()).unwrap();
            (qp, api.register_mr(64, Access::NONE))
        });
        let (b_qp, b_cq) = net.with_api(b, |api| {
            let scq = api.create_cq(8);
            let rcq = api.create_cq(8);
            let qp = api.create_qp(scq, rcq, QpCaps::default()).unwrap();
            let mr = api.register_mr(64, Access::LOCAL_WRITE);
            api.connect_qp(qp, (a, QpNum(1))).ok();
            api.post_recv(qp, RecvWr::new(1, Sge::new(mr.addr, 64, mr.key)))
                .unwrap();
            (qp, rcq)
        });
        // Re-connect cleanly (the b-side guess above may not match).
        net.with_api(a, |api| api.connect_qp(a_qp, (b, b_qp)).unwrap());

        let mut shot = Shot {
            qpn: Some(a_qp),
            mr: Some(a_mr),
        };
        let mut sink = Sink {
            cq: Some(b_cq),
            got_at: None,
        };
        let outcome = net.run(&mut [&mut shot, &mut sink], SimTime::from_secs(1));
        assert!(outcome.completed);
        sink.got_at.expect("completion processed")
    }

    #[test]
    fn wakeup_latency_delays_idle_receivers() {
        let with_latency = one_message_end(latency_host());
        let without = one_message_end(HostModel::free());
        let delta = with_latency.as_nanos() - without.as_nanos();
        assert!(
            (9_000..=11_000).contains(&delta),
            "expected ~10us wakeup latency, saw {delta} ns"
        );
    }

    #[test]
    fn busy_poll_skips_wakeup_latency() {
        let mut host = latency_host();
        host.busy_poll = true;
        let polled = one_message_end(host);
        let free = one_message_end(HostModel::free());
        assert_eq!(polled, free, "busy polling must see events immediately");
    }

    #[test]
    fn stalls_extend_some_wakeups() {
        let mut host = latency_host();
        host.stall_prob = 1.0; // every wake stalls
        host.stall_max = SimDuration::from_micros(100);
        let stalled = one_message_end(host);
        let base = one_message_end(latency_host());
        assert!(stalled >= base, "a certain stall cannot make things faster");
    }
}
