//! Completion queues with poll and event-notification semantics.
//!
//! A [`CompletionQueue`] buffers work completions until the application
//! polls them. The notification model follows verbs: the queue starts
//! un-armed; `arm()` requests a single notification which fires when the
//! next completion is pushed (or immediately if completions are already
//! pending, matching `ibv_req_notify_cq` + the solicited-event race rules
//! applications must handle). The paper's measurements use event
//! notification rather than busy polling for large messages (§IV-B), and
//! the host model charges a wakeup cost per notification.

use std::collections::VecDeque;

use crate::types::{CqId, Cqe};

/// A simulated completion queue.
pub struct CompletionQueue {
    id: CqId,
    entries: VecDeque<Cqe>,
    capacity: usize,
    armed: bool,
    /// Set if a push ever found the queue full; surfaced as a hard error
    /// by the driver because a real CQ overrun is fatal to the QP.
    overflowed: bool,
    total_pushed: u64,
    total_polled: u64,
    nonempty_polls: u64,
    max_batch: u64,
}

impl CompletionQueue {
    /// Creates a CQ able to buffer `capacity` completions.
    pub fn new(id: CqId, capacity: usize) -> Self {
        CompletionQueue {
            id,
            entries: VecDeque::with_capacity(capacity.min(1024)),
            capacity: capacity.max(1),
            armed: false,
            overflowed: false,
            total_pushed: 0,
            total_polled: 0,
            nonempty_polls: 0,
            max_batch: 0,
        }
    }

    /// The queue's id.
    pub fn id(&self) -> CqId {
        self.id
    }

    /// Pushes a completion. Returns `true` if an armed notification fired
    /// (the arm is consumed).
    pub fn push(&mut self, cqe: Cqe) -> bool {
        if self.entries.len() == self.capacity {
            self.overflowed = true;
            // Drop the completion; the driver turns `overflowed` into a
            // fatal error at the next poll.
            return false;
        }
        self.entries.push_back(cqe);
        self.total_pushed += 1;
        if self.armed {
            self.armed = false;
            true
        } else {
            false
        }
    }

    /// Polls up to `max` completions into `out`, returning how many were
    /// delivered.
    pub fn poll(&mut self, max: usize, out: &mut Vec<Cqe>) -> usize {
        let n = max.min(self.entries.len());
        for _ in 0..n {
            out.push(self.entries.pop_front().expect("len checked"));
        }
        self.total_polled += n as u64;
        if n > 0 {
            self.nonempty_polls += 1;
            self.max_batch = self.max_batch.max(n as u64);
        }
        n
    }

    /// Requests a notification for the next completion. Returns `true` if
    /// completions are already pending, in which case the caller should
    /// treat the notification as immediately fired (the arm is not
    /// stored) — this mirrors the poll-after-arm pattern required by real
    /// verbs to avoid losing wakeups.
    pub fn arm(&mut self) -> bool {
        if !self.entries.is_empty() {
            true
        } else {
            self.armed = true;
            false
        }
    }

    /// Whether an arm is pending.
    pub fn is_armed(&self) -> bool {
        self.armed
    }

    /// Number of buffered completions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no completions are buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True if the queue ever overflowed.
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// Completions pushed over the queue's lifetime.
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }

    /// Completions polled over the queue's lifetime.
    pub fn total_polled(&self) -> u64 {
        self.total_polled
    }

    /// Poll calls that returned at least one completion. Together with
    /// [`CompletionQueue::total_polled`] this gives the mean drain batch
    /// — the amortization a shared CQ buys a multi-connection poller.
    pub fn nonempty_polls(&self) -> u64 {
        self.nonempty_polls
    }

    /// Largest batch a single poll call drained.
    pub fn max_batch(&self) -> u64 {
        self.max_batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{QpNum, WcOpcode, WcStatus};

    fn cqe(wr_id: u64) -> Cqe {
        Cqe {
            wr_id,
            status: WcStatus::Success,
            opcode: WcOpcode::Send,
            byte_len: 0,
            imm: None,
            qpn: QpNum(0),
        }
    }

    #[test]
    fn push_poll_fifo() {
        let mut cq = CompletionQueue::new(CqId(1), 8);
        for i in 0..5 {
            cq.push(cqe(i));
        }
        let mut out = Vec::new();
        assert_eq!(cq.poll(3, &mut out), 3);
        assert_eq!(out.iter().map(|c| c.wr_id).collect::<Vec<_>>(), [0, 1, 2]);
        assert_eq!(cq.poll(10, &mut out), 2);
        assert_eq!(cq.len(), 0);
        assert_eq!(cq.total_pushed(), 5);
        assert_eq!(cq.total_polled(), 5);
    }

    #[test]
    fn arm_fires_once_on_next_push() {
        let mut cq = CompletionQueue::new(CqId(1), 8);
        assert!(!cq.arm());
        assert!(cq.is_armed());
        assert!(cq.push(cqe(1)), "armed push must notify");
        assert!(!cq.is_armed());
        assert!(!cq.push(cqe(2)), "second push must not notify");
    }

    #[test]
    fn arm_with_pending_fires_immediately() {
        let mut cq = CompletionQueue::new(CqId(1), 8);
        cq.push(cqe(1));
        assert!(cq.arm(), "arm with pending completions reports immediately");
        assert!(!cq.is_armed());
    }

    #[test]
    fn batch_stats_track_drains() {
        let mut cq = CompletionQueue::new(CqId(1), 16);
        let mut out = Vec::new();
        assert_eq!(cq.poll(8, &mut out), 0);
        assert_eq!(cq.nonempty_polls(), 0);
        for i in 0..5 {
            cq.push(cqe(i));
        }
        cq.poll(3, &mut out);
        cq.poll(usize::MAX, &mut out);
        assert_eq!(cq.nonempty_polls(), 2);
        assert_eq!(cq.max_batch(), 3);
    }

    #[test]
    fn overflow_is_latched() {
        let mut cq = CompletionQueue::new(CqId(1), 2);
        cq.push(cqe(1));
        cq.push(cqe(2));
        assert!(!cq.overflowed());
        cq.push(cqe(3));
        assert!(cq.overflowed());
        // The overflowing entry was dropped.
        assert_eq!(cq.len(), 2);
    }

    #[test]
    fn capacity_minimum_is_one() {
        let mut cq = CompletionQueue::new(CqId(1), 0);
        cq.push(cqe(1));
        assert_eq!(cq.len(), 1);
        cq.push(cqe(2));
        assert!(cq.overflowed());
    }
}
