//! The simulated host channel adapter (HCA).
//!
//! [`HcaCore`] owns one node's verbs objects — memory table, queue pairs,
//! completion queues — and implements the *time-passive* half of the HCA:
//! validating work requests, gathering payloads, matching posted receives,
//! performing DMA placement and generating completions. All timing (WQE
//! processing latency, link serialization, propagation) is applied by the
//! driver (`sim::SimNet` for virtual time, `threaded::ThreadNet` for real
//! time), which is what lets both backends share this logic.
//!
//! Wire-facing behaviour follows RC semantics: operations are processed
//! in arrival order, SEND and WRITE-WITH-IMM consume posted receives
//! (receiver-not-ready is fatal — the EXS credit protocol must prevent it),
//! RDMA WRITE/READ validate rkey, bounds and access flags against the
//! registration table.

use std::collections::HashMap;

use bytes::Bytes;
use simnet::SimDuration;

use crate::cq::CompletionQueue;
use crate::mr::{MemoryTable, MrInfo};
use crate::qp::{QpCaps, QueuePair};
use crate::types::{
    Access, CqId, Cqe, MrKey, NodeId, QpNum, RecvWr, Result, SendOpcode, SendWr, Sge, VerbsError,
    WcOpcode, WcStatus,
};
use crate::wire::{WireMessage, WireOp};

/// Static HCA parameters.
#[derive(Clone, Debug)]
pub struct HcaConfig {
    /// Per-WQE processing latency (doorbell to wire handoff).
    pub wqe_process: SimDuration,
    /// Default CQ capacity used by [`HcaCore::create_cq`] callers that do
    /// not specify one.
    pub default_cq_depth: usize,
}

impl Default for HcaConfig {
    fn default() -> Self {
        HcaConfig {
            wqe_process: SimDuration::from_nanos(250),
            default_cq_depth: 4096,
        }
    }
}

/// Side effects produced by HCA processing, applied by the driver.
#[derive(Debug)]
pub enum Effect {
    /// A completion was queued on `cq`; `notify` is true if an armed
    /// notification fired with it.
    Completion {
        /// Queue that received the completion.
        cq: CqId,
        /// True if the CQ was armed and the arm was consumed.
        notify: bool,
    },
    /// The HCA originated a wire message itself (RDMA READ response);
    /// the driver must run it through the transmit pipeline.
    Transmit(WireMessage),
    /// Unrecoverable protocol violation (receiver-not-ready, remote
    /// access error). A real HCA would move the QP to the error state
    /// after retries; the simulator surfaces it to the driver, which by
    /// default treats it as a test failure.
    Fatal {
        /// The violated QP.
        qpn: QpNum,
        /// Classification.
        status: WcStatus,
        /// Human-readable detail for diagnostics.
        detail: String,
    },
}

/// A send work request validated and translated into wire form, plus the
/// completion to deliver when transmission finishes.
#[derive(Debug)]
pub struct PreparedSend {
    /// The message to carry to the peer.
    pub msg: WireMessage,
    /// Send-side completion to deliver at wire departure (`None` for
    /// unsignaled sends and for RDMA READ, which completes on response).
    pub completion_at_tx: Option<Cqe>,
    /// True for RDMA READ requests: the SQ slot stays occupied until the
    /// response arrives.
    pub is_read: bool,
}

struct PendingRead {
    qpn: QpNum,
    wr_id: u64,
    sge: Sge,
    signaled: bool,
}

/// One node's verbs state.
pub struct HcaCore {
    node: NodeId,
    cfg: HcaConfig,
    mem: MemoryTable,
    qps: HashMap<u32, QueuePair>,
    cqs: HashMap<u32, CompletionQueue>,
    next_qpn: u32,
    next_cq: u32,
    pending_reads: HashMap<u64, PendingRead>,
    next_read_token: u64,
}

impl HcaCore {
    /// Creates an empty HCA for `node`.
    pub fn new(node: NodeId, cfg: HcaConfig) -> Self {
        HcaCore {
            node,
            cfg,
            mem: MemoryTable::new(),
            qps: HashMap::new(),
            cqs: HashMap::new(),
            next_qpn: 1,
            next_cq: 1,
            pending_reads: HashMap::new(),
            next_read_token: 1,
        }
    }

    /// This HCA's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Static configuration.
    pub fn config(&self) -> &HcaConfig {
        &self.cfg
    }

    /// The registration table (application-side memory access).
    pub fn mem(&self) -> &MemoryTable {
        &self.mem
    }

    /// Mutable registration table.
    pub fn mem_mut(&mut self) -> &mut MemoryTable {
        &mut self.mem
    }

    /// Registers a memory region.
    pub fn register_mr(&mut self, len: usize, access: Access) -> MrInfo {
        self.mem.register(len, access)
    }

    /// Deregisters a memory region.
    pub fn deregister_mr(&mut self, key: MrKey) -> Result<()> {
        self.mem.deregister(key)
    }

    /// Creates a completion queue of the given depth (0 uses the
    /// configured default).
    pub fn create_cq(&mut self, depth: usize) -> CqId {
        let id = CqId(self.next_cq);
        self.next_cq += 1;
        let depth = if depth == 0 {
            self.cfg.default_cq_depth
        } else {
            depth
        };
        self.cqs.insert(id.0, CompletionQueue::new(id, depth));
        id
    }

    /// Creates a queue pair in the RESET state.
    pub fn create_qp(&mut self, send_cq: CqId, recv_cq: CqId, caps: QpCaps) -> Result<QpNum> {
        if !self.cqs.contains_key(&send_cq.0) {
            return Err(VerbsError::UnknownCq(send_cq));
        }
        if !self.cqs.contains_key(&recv_cq.0) {
            return Err(VerbsError::UnknownCq(recv_cq));
        }
        let qpn = QpNum(self.next_qpn);
        self.next_qpn += 1;
        self.qps
            .insert(qpn.0, QueuePair::new(qpn, send_cq, recv_cq, caps));
        Ok(qpn)
    }

    /// Walks a QP through INIT → RTR → RTS against the given peer.
    pub fn connect_qp(&mut self, qpn: QpNum, remote: (NodeId, QpNum)) -> Result<()> {
        let qp = self.qp_mut(qpn)?;
        qp.to_init()?;
        qp.to_rtr(remote)?;
        qp.to_rts()?;
        Ok(())
    }

    /// Immutable QP access.
    pub fn qp(&self, qpn: QpNum) -> Result<&QueuePair> {
        self.qps.get(&qpn.0).ok_or(VerbsError::UnknownQp(qpn))
    }

    /// Mutable QP access.
    pub fn qp_mut(&mut self, qpn: QpNum) -> Result<&mut QueuePair> {
        self.qps.get_mut(&qpn.0).ok_or(VerbsError::UnknownQp(qpn))
    }

    /// Immutable CQ access.
    pub fn cq(&self, cq: CqId) -> Result<&CompletionQueue> {
        self.cqs.get(&cq.0).ok_or(VerbsError::UnknownCq(cq))
    }

    /// Mutable CQ access.
    pub fn cq_mut(&mut self, cq: CqId) -> Result<&mut CompletionQueue> {
        self.cqs.get_mut(&cq.0).ok_or(VerbsError::UnknownCq(cq))
    }

    /// Polls up to `max` completions from `cq`.
    pub fn poll_cq(&mut self, cq: CqId, max: usize, out: &mut Vec<Cqe>) -> Result<usize> {
        let q = self.cq_mut(cq)?;
        assert!(
            !q.overflowed(),
            "completion queue {cq:?} overflowed: the ULP posted more work than CQ depth"
        );
        Ok(q.poll(max, out))
    }

    /// Arms `cq` for one notification. Returns `true` if completions are
    /// already pending (caller should poll immediately).
    pub fn arm_cq(&mut self, cq: CqId) -> Result<bool> {
        Ok(self.cq_mut(cq)?.arm())
    }

    /// True if any CQ on this node holds completions (driver helper).
    pub fn any_cq_nonempty(&self) -> bool {
        self.cqs.values().any(|c| !c.is_empty())
    }

    /// Forces a QP into the error state (fault injection: cable pull,
    /// retry exhaustion, peer death). Every posted receive is flushed
    /// with a `WrFlushError` completion, as real RC hardware does, so
    /// the ULP can learn which buffers were never filled.
    pub fn fail_qp(&mut self, qpn: QpNum) -> Result<Vec<Effect>> {
        let qp = self.qp_mut(qpn)?;
        let recv_cq = qp.recv_cq();
        let flushed = qp.to_error();
        let mut effects = Vec::with_capacity(flushed.len());
        for wr in flushed {
            self.push_cqe(
                recv_cq,
                Cqe {
                    wr_id: wr.wr_id,
                    status: WcStatus::WrFlushError,
                    opcode: WcOpcode::Recv,
                    byte_len: 0,
                    imm: None,
                    qpn,
                },
                &mut effects,
            );
        }
        Ok(effects)
    }

    /// Posts a receive WQE.
    pub fn post_recv(&mut self, qpn: QpNum, wr: RecvWr) -> Result<()> {
        // Validate the SGE eagerly so misuse fails at post time, like a
        // real HCA's address translation check.
        if let Some(sge) = wr.sge {
            self.mem
                .dma_read(sge.lkey, sge.addr, 0, Access::NONE)
                .and_then(|_| {
                    // Zero-length read checks the key; bounds for the full
                    // span are checked here.
                    self.mem
                        .dma_read(sge.lkey, sge.addr, sge.len as u64, Access::NONE)
                        .map(|_| ())
                })?;
        }
        self.qp_mut(qpn)?.post_recv(wr)
    }

    /// Validates a send work request and translates it to wire form.
    /// Timing and delivery are the driver's job.
    pub fn prepare_send(&mut self, qpn: QpNum, wr: SendWr) -> Result<PreparedSend> {
        let max_inline = self.qp(qpn)?.caps().max_inline;
        if let Some(inline) = &wr.inline {
            if inline.len() > max_inline {
                return Err(VerbsError::InlineTooLarge {
                    len: inline.len(),
                    max: max_inline,
                });
            }
        }
        if wr.inline.is_some() && wr.sge.is_some() {
            return Err(VerbsError::MalformedWr("both inline and sge present"));
        }

        // Gather the payload now: zero-copy contract says the app must
        // not touch the buffer until completion, so the content at post
        // time is the content on the wire.
        let payload: Bytes = if let Some(inline) = &wr.inline {
            inline.clone()
        } else if let Some(sge) = &wr.sge {
            if wr.opcode == SendOpcode::RdmaRead {
                // Local destination: validated, not gathered.
                self.mem
                    .dma_read(sge.lkey, sge.addr, sge.len as u64, Access::NONE)?;
                Bytes::new()
            } else {
                Bytes::from(
                    self.mem
                        .dma_read(sge.lkey, sge.addr, sge.len as u64, Access::NONE)?,
                )
            }
        } else {
            Bytes::new()
        };

        let qp = self.qp_mut(qpn)?;
        let remote_qp = qp.remote().ok_or(VerbsError::NotConnected)?;
        qp.reserve_sq_slot()?;
        let src = (self.node, qpn);

        let op = match wr.opcode {
            SendOpcode::Send => WireOp::Send { imm: wr.imm },
            SendOpcode::RdmaWrite => {
                let r = wr
                    .remote
                    .ok_or(VerbsError::MalformedWr("RDMA WRITE without remote"))?;
                WireOp::Write {
                    raddr: r.addr,
                    rkey: r.rkey,
                }
            }
            SendOpcode::RdmaWriteImm => {
                let r = wr
                    .remote
                    .ok_or(VerbsError::MalformedWr("RDMA WRITE IMM without remote"))?;
                WireOp::WriteImm {
                    raddr: r.addr,
                    rkey: r.rkey,
                    imm: wr.imm.ok_or(VerbsError::MalformedWr("WWI without imm"))?,
                }
            }
            SendOpcode::RdmaRead => {
                let r = wr
                    .remote
                    .ok_or(VerbsError::MalformedWr("RDMA READ without remote"))?;
                let sge = wr
                    .sge
                    .ok_or(VerbsError::MalformedWr("RDMA READ without sge"))?;
                let token = self.next_read_token;
                self.next_read_token += 1;
                self.pending_reads.insert(
                    token,
                    PendingRead {
                        qpn,
                        wr_id: wr.wr_id,
                        sge,
                        signaled: wr.signaled,
                    },
                );
                WireOp::ReadReq {
                    raddr: r.addr,
                    rkey: r.rkey,
                    len: sge.len,
                    token,
                }
            }
        };

        let is_read = wr.opcode == SendOpcode::RdmaRead;
        let completion_at_tx = if wr.signaled && !is_read {
            Some(Cqe {
                wr_id: wr.wr_id,
                status: WcStatus::Success,
                opcode: match wr.opcode {
                    SendOpcode::Send => WcOpcode::Send,
                    _ => WcOpcode::RdmaWrite,
                },
                byte_len: payload.len() as u32,
                imm: None,
                qpn,
            })
        } else {
            None
        };

        Ok(PreparedSend {
            msg: WireMessage {
                src,
                dst: remote_qp,
                op,
                payload,
            },
            completion_at_tx,
            is_read,
        })
    }

    /// Called by the driver when a non-READ send's wire transmission
    /// finishes. Selective-signaling semantics: an unsignaled WQE's SQ
    /// slot is *not* freed here — it is parked until the next signaled
    /// completion on the same QP, which retires the whole unsignaled
    /// run plus itself in one batch (the ULP can only learn slots are
    /// free from a CQE, and the FIFO channel makes one CQE vouch for
    /// everything posted before it).
    pub fn tx_finished(&mut self, qpn: QpNum, completion: Option<Cqe>, effects: &mut Vec<Effect>) {
        if let Ok(qp) = self.qp_mut(qpn) {
            match completion {
                Some(_) => {
                    qp.release_sq_batch();
                }
                None => qp.defer_sq_release(),
            }
        }
        if let Some(cqe) = completion {
            self.push_completion_for_send(qpn, cqe, effects);
        }
    }

    fn push_completion_for_send(&mut self, qpn: QpNum, cqe: Cqe, effects: &mut Vec<Effect>) {
        let cq = match self.qp(qpn) {
            Ok(qp) => qp.send_cq(),
            Err(_) => return,
        };
        self.push_cqe(cq, cqe, effects);
    }

    fn push_cqe(&mut self, cq: CqId, cqe: Cqe, effects: &mut Vec<Effect>) {
        let q = self.cqs.get_mut(&cq.0).expect("CQ vanished");
        let notify = q.push(cqe);
        effects.push(Effect::Completion { cq, notify });
    }

    /// Processes an arriving wire message, producing completions,
    /// responder transmissions and/or fatal errors.
    pub fn handle_wire(&mut self, msg: WireMessage) -> Vec<Effect> {
        let mut effects = Vec::new();
        let qpn = msg.dst.1;
        match msg.op {
            WireOp::Send { imm } => {
                self.receive_into_posted(qpn, &msg.payload, imm, WcOpcode::Recv, &mut effects);
            }
            WireOp::Write { raddr, rkey } => {
                if let Err(e) = self
                    .mem
                    .dma_write(rkey, raddr, &msg.payload, Access::REMOTE_WRITE)
                {
                    effects.push(Effect::Fatal {
                        qpn,
                        status: WcStatus::RemoteAccessError,
                        detail: format!("RDMA WRITE rejected: {e}"),
                    });
                }
            }
            WireOp::WriteImm { raddr, rkey, imm } => {
                if let Err(e) = self
                    .mem
                    .dma_write(rkey, raddr, &msg.payload, Access::REMOTE_WRITE)
                {
                    effects.push(Effect::Fatal {
                        qpn,
                        status: WcStatus::RemoteAccessError,
                        detail: format!("RDMA WRITE WITH IMM rejected: {e}"),
                    });
                    return effects;
                }
                // The notification consumes a receive WQE, but the data
                // was placed by the WRITE part: the RECV's own buffer is
                // untouched.
                match self.qp_mut(qpn).ok().and_then(|qp| qp.consume_recv()) {
                    Some(recv) => {
                        let cq = self.qp(qpn).expect("qp exists").recv_cq();
                        self.push_cqe(
                            cq,
                            Cqe {
                                wr_id: recv.wr_id,
                                status: WcStatus::Success,
                                opcode: WcOpcode::RecvRdmaWithImm,
                                byte_len: msg.payload.len() as u32,
                                imm: Some(imm),
                                qpn,
                            },
                            &mut effects,
                        );
                    }
                    None => effects.push(Effect::Fatal {
                        qpn,
                        status: WcStatus::RnrRetryExceeded,
                        detail: "WRITE WITH IMM arrived with no posted RECV".to_string(),
                    }),
                }
            }
            WireOp::ReadReq {
                raddr,
                rkey,
                len,
                token,
            } => match self
                .mem
                .dma_read(rkey, raddr, len as u64, Access::REMOTE_READ)
            {
                Ok(data) => {
                    effects.push(Effect::Transmit(WireMessage {
                        src: msg.dst,
                        dst: msg.src,
                        op: WireOp::ReadResp { token },
                        payload: Bytes::from(data),
                    }));
                }
                Err(e) => effects.push(Effect::Fatal {
                    qpn,
                    status: WcStatus::RemoteAccessError,
                    detail: format!("RDMA READ rejected: {e}"),
                }),
            },
            WireOp::ReadResp { token } => {
                let Some(pending) = self.pending_reads.remove(&token) else {
                    effects.push(Effect::Fatal {
                        qpn,
                        status: WcStatus::LocalProtectionError,
                        detail: format!("READ response with unknown token {token}"),
                    });
                    return effects;
                };
                if let Err(e) = self.mem.dma_write(
                    pending.sge.lkey,
                    pending.sge.addr,
                    &msg.payload,
                    Access::LOCAL_WRITE,
                ) {
                    effects.push(Effect::Fatal {
                        qpn: pending.qpn,
                        status: WcStatus::LocalProtectionError,
                        detail: format!("READ response placement failed: {e}"),
                    });
                    return effects;
                }
                if let Ok(qp) = self.qp_mut(pending.qpn) {
                    qp.release_sq_slot();
                }
                if pending.signaled {
                    let cqe = Cqe {
                        wr_id: pending.wr_id,
                        status: WcStatus::Success,
                        opcode: WcOpcode::RdmaRead,
                        byte_len: msg.payload.len() as u32,
                        imm: None,
                        qpn: pending.qpn,
                    };
                    self.push_completion_for_send(pending.qpn, cqe, &mut effects);
                }
            }
        }
        effects
    }

    fn receive_into_posted(
        &mut self,
        qpn: QpNum,
        payload: &Bytes,
        imm: Option<u32>,
        opcode: WcOpcode,
        effects: &mut Vec<Effect>,
    ) {
        let recv = match self.qp_mut(qpn).ok().and_then(|qp| qp.consume_recv()) {
            Some(r) => r,
            None => {
                effects.push(Effect::Fatal {
                    qpn,
                    status: WcStatus::RnrRetryExceeded,
                    detail: format!(
                        "SEND of {} bytes arrived with no posted RECV",
                        payload.len()
                    ),
                });
                return;
            }
        };
        // Place the payload into the receive buffer.
        if !payload.is_empty() {
            let Some(sge) = recv.sge else {
                effects.push(Effect::Fatal {
                    qpn,
                    status: WcStatus::LocalProtectionError,
                    detail: "SEND payload arrived into zero-length RECV".to_string(),
                });
                return;
            };
            if payload.len() as u64 > sge.len as u64 {
                effects.push(Effect::Fatal {
                    qpn,
                    status: WcStatus::LocalProtectionError,
                    detail: format!(
                        "SEND of {} bytes exceeds RECV buffer of {} bytes",
                        payload.len(),
                        sge.len
                    ),
                });
                return;
            }
            if let Err(e) = self
                .mem
                .dma_write(sge.lkey, sge.addr, payload, Access::LOCAL_WRITE)
            {
                effects.push(Effect::Fatal {
                    qpn,
                    status: WcStatus::LocalProtectionError,
                    detail: format!("RECV placement failed: {e}"),
                });
                return;
            }
        }
        let cq = self.qp(qpn).expect("qp exists").recv_cq();
        self.push_cqe(
            cq,
            Cqe {
                wr_id: recv.wr_id,
                status: WcStatus::Success,
                opcode,
                byte_len: payload.len() as u32,
                imm,
                qpn,
            },
            effects,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::RemoteAddr;

    /// Builds two connected HCAs and returns them with their QPNs and the
    /// CQ ids (send, recv) on each side.
    fn pair() -> (HcaCore, HcaCore, QpNum, QpNum, (CqId, CqId), (CqId, CqId)) {
        let mut a = HcaCore::new(NodeId(0), HcaConfig::default());
        let mut b = HcaCore::new(NodeId(1), HcaConfig::default());
        let a_scq = a.create_cq(0);
        let a_rcq = a.create_cq(0);
        let b_scq = b.create_cq(0);
        let b_rcq = b.create_cq(0);
        let qa = a.create_qp(a_scq, a_rcq, QpCaps::default()).unwrap();
        let qb = b.create_qp(b_scq, b_rcq, QpCaps::default()).unwrap();
        a.connect_qp(qa, (NodeId(1), qb)).unwrap();
        b.connect_qp(qb, (NodeId(0), qa)).unwrap();
        (a, b, qa, qb, (a_scq, a_rcq), (b_scq, b_rcq))
    }

    fn drain(hca: &mut HcaCore, cq: CqId) -> Vec<Cqe> {
        let mut out = Vec::new();
        hca.poll_cq(cq, usize::MAX, &mut out).unwrap();
        out
    }

    #[test]
    fn send_recv_roundtrip() {
        let (mut a, mut b, qa, qb, (a_scq, _), (_, b_rcq)) = pair();
        let src = a.register_mr(64, Access::NONE);
        let dst = b.register_mr(64, Access::LOCAL_WRITE);
        a.mem_mut().app_write(src.key, src.addr, b"ping").unwrap();
        b.post_recv(qb, RecvWr::new(77, dst.full_sge())).unwrap();

        let prep = a.prepare_send(qa, SendWr::send(11, src.sge(0, 4))).unwrap();
        assert!(!prep.is_read);
        // Simulate transmission finishing, then delivery.
        let mut fx = Vec::new();
        a.tx_finished(qa, prep.completion_at_tx, &mut fx);
        assert!(matches!(fx[0], Effect::Completion { cq, .. } if cq == a_scq));
        let send_cqes = drain(&mut a, a_scq);
        assert_eq!(send_cqes.len(), 1);
        assert_eq!(send_cqes[0].wr_id, 11);

        let fx = b.handle_wire(prep.msg);
        assert_eq!(fx.len(), 1);
        let recv_cqes = drain(&mut b, b_rcq);
        assert_eq!(recv_cqes.len(), 1);
        assert_eq!(recv_cqes[0].wr_id, 77);
        assert_eq!(recv_cqes[0].byte_len, 4);
        assert_eq!(recv_cqes[0].opcode, WcOpcode::Recv);
        let mut buf = [0u8; 4];
        b.mem().app_read(dst.key, dst.addr, &mut buf).unwrap();
        assert_eq!(&buf, b"ping");
    }

    #[test]
    fn send_without_recv_is_rnr_fatal() {
        let (mut a, mut b, qa, _, _, _) = pair();
        let src = a.register_mr(8, Access::NONE);
        let prep = a.prepare_send(qa, SendWr::send(1, src.sge(0, 8))).unwrap();
        let fx = b.handle_wire(prep.msg);
        assert!(matches!(
            fx[0],
            Effect::Fatal {
                status: WcStatus::RnrRetryExceeded,
                ..
            }
        ));
    }

    #[test]
    fn rdma_write_places_silently() {
        let (mut a, mut b, qa, _, _, (_, b_rcq)) = pair();
        let src = a.register_mr(16, Access::NONE);
        let dst = b.register_mr(16, Access::local_remote_write());
        a.mem_mut()
            .app_write(src.key, src.addr, b"zero-copy!")
            .unwrap();

        let wr = SendWr::write(
            5,
            src.sge(0, 10),
            RemoteAddr {
                addr: dst.addr + 2,
                rkey: dst.key,
            },
        );
        let prep = a.prepare_send(qa, wr).unwrap();
        let fx = b.handle_wire(prep.msg);
        assert!(fx.is_empty(), "pure WRITE generates no receiver effects");
        assert!(drain(&mut b, b_rcq).is_empty());
        let mut buf = [0u8; 10];
        b.mem().app_read(dst.key, dst.addr + 2, &mut buf).unwrap();
        assert_eq!(&buf, b"zero-copy!");
    }

    #[test]
    fn write_imm_places_and_notifies() {
        let (mut a, mut b, qa, qb, _, (_, b_rcq)) = pair();
        let src = a.register_mr(16, Access::NONE);
        let dst = b.register_mr(16, Access::local_remote_write());
        a.mem_mut()
            .app_write(src.key, src.addr, b"wwi-data")
            .unwrap();
        b.post_recv(qb, RecvWr::empty(42)).unwrap();

        let wr = SendWr::write_imm(
            6,
            src.sge(0, 8),
            RemoteAddr {
                addr: dst.addr,
                rkey: dst.key,
            },
            0xDEAD,
        );
        let prep = a.prepare_send(qa, wr).unwrap();
        b.handle_wire(prep.msg);
        let cqes = drain(&mut b, b_rcq);
        assert_eq!(cqes.len(), 1);
        assert_eq!(cqes[0].wr_id, 42);
        assert_eq!(cqes[0].imm, Some(0xDEAD));
        assert_eq!(cqes[0].byte_len, 8);
        assert_eq!(cqes[0].opcode, WcOpcode::RecvRdmaWithImm);
        let mut buf = [0u8; 8];
        b.mem().app_read(dst.key, dst.addr, &mut buf).unwrap();
        assert_eq!(&buf, b"wwi-data");
    }

    #[test]
    fn write_imm_without_recv_is_rnr() {
        let (mut a, mut b, qa, _, _, _) = pair();
        let src = a.register_mr(8, Access::NONE);
        let dst = b.register_mr(8, Access::local_remote_write());
        let wr = SendWr::write_imm(
            1,
            src.sge(0, 8),
            RemoteAddr {
                addr: dst.addr,
                rkey: dst.key,
            },
            1,
        );
        let prep = a.prepare_send(qa, wr).unwrap();
        let fx = b.handle_wire(prep.msg);
        assert!(matches!(
            fx[0],
            Effect::Fatal {
                status: WcStatus::RnrRetryExceeded,
                ..
            }
        ));
    }

    #[test]
    fn write_to_unauthorized_region_is_remote_access_error() {
        let (mut a, mut b, qa, _, _, _) = pair();
        let src = a.register_mr(8, Access::NONE);
        // No REMOTE_WRITE grant.
        let dst = b.register_mr(8, Access::LOCAL_WRITE);
        let wr = SendWr::write(
            1,
            src.sge(0, 8),
            RemoteAddr {
                addr: dst.addr,
                rkey: dst.key,
            },
        );
        let prep = a.prepare_send(qa, wr).unwrap();
        let fx = b.handle_wire(prep.msg);
        assert!(matches!(
            fx[0],
            Effect::Fatal {
                status: WcStatus::RemoteAccessError,
                ..
            }
        ));
    }

    #[test]
    fn write_out_of_bounds_is_rejected() {
        let (mut a, mut b, qa, _, _, _) = pair();
        let src = a.register_mr(64, Access::NONE);
        let dst = b.register_mr(8, Access::local_remote_write());
        let wr = SendWr::write(
            1,
            src.sge(0, 64),
            RemoteAddr {
                addr: dst.addr,
                rkey: dst.key,
            },
        );
        let prep = a.prepare_send(qa, wr).unwrap();
        let fx = b.handle_wire(prep.msg);
        assert!(matches!(fx[0], Effect::Fatal { .. }));
    }

    #[test]
    fn rdma_read_roundtrip() {
        let (mut a, mut b, qa, _, (a_scq, _), _) = pair();
        let local = a.register_mr(32, Access::LOCAL_WRITE);
        let remote = b.register_mr(32, Access::REMOTE_READ | Access::LOCAL_WRITE);
        b.mem_mut()
            .app_write(remote.key, remote.addr, b"read-me")
            .unwrap();

        let wr = SendWr::read(
            9,
            local.sge(0, 7),
            RemoteAddr {
                addr: remote.addr,
                rkey: remote.key,
            },
        );
        let prep = a.prepare_send(qa, wr).unwrap();
        assert!(prep.is_read);
        assert!(prep.completion_at_tx.is_none());
        assert_eq!(prep.msg.payload_len(), 0);
        assert_eq!(a.qp(qa).unwrap().sq_outstanding(), 1);

        // Responder handles the request and produces a response.
        let fx = b.handle_wire(prep.msg);
        let Effect::Transmit(resp) = &fx[0] else {
            panic!("expected Transmit effect");
        };
        assert_eq!(resp.payload_len(), 7);

        // Requester consumes the response.
        let fx = a.handle_wire(resp.clone());
        assert!(matches!(fx[0], Effect::Completion { cq, .. } if cq == a_scq));
        assert_eq!(a.qp(qa).unwrap().sq_outstanding(), 0);
        let cqes = drain(&mut a, a_scq);
        assert_eq!(cqes[0].wr_id, 9);
        assert_eq!(cqes[0].opcode, WcOpcode::RdmaRead);
        let mut buf = [0u8; 7];
        a.mem().app_read(local.key, local.addr, &mut buf).unwrap();
        assert_eq!(&buf, b"read-me");
    }

    #[test]
    fn read_from_unauthorized_region_fails() {
        let (mut a, mut b, qa, _, _, _) = pair();
        let local = a.register_mr(8, Access::LOCAL_WRITE);
        let remote = b.register_mr(8, Access::NONE);
        let wr = SendWr::read(
            1,
            local.sge(0, 8),
            RemoteAddr {
                addr: remote.addr,
                rkey: remote.key,
            },
        );
        let prep = a.prepare_send(qa, wr).unwrap();
        let fx = b.handle_wire(prep.msg);
        assert!(matches!(
            fx[0],
            Effect::Fatal {
                status: WcStatus::RemoteAccessError,
                ..
            }
        ));
    }

    #[test]
    fn inline_send_respects_limit() {
        let (mut a, _, qa, _, _, _) = pair();
        let big = vec![0u8; 4096];
        let err = a.prepare_send(qa, SendWr::send_inline(1, big)).unwrap_err();
        assert!(matches!(err, VerbsError::InlineTooLarge { .. }));
        let ok = a
            .prepare_send(qa, SendWr::send_inline(2, vec![0u8; 64]))
            .unwrap();
        assert_eq!(ok.msg.payload_len(), 64);
    }

    #[test]
    fn unsignaled_send_has_no_completion() {
        let (mut a, _, qa, _, (a_scq, _), _) = pair();
        let src = a.register_mr(8, Access::NONE);
        let prep = a
            .prepare_send(qa, SendWr::send(1, src.sge(0, 8)).unsignaled())
            .unwrap();
        assert!(prep.completion_at_tx.is_none());
        let mut fx = Vec::new();
        a.tx_finished(qa, prep.completion_at_tx, &mut fx);
        assert!(fx.is_empty());
        assert!(drain(&mut a, a_scq).is_empty());
        // The unsignaled WQE's SQ slot stays parked until a signaled
        // completion retires it.
        assert_eq!(a.qp(qa).unwrap().sq_outstanding(), 1);
        assert_eq!(a.qp(qa).unwrap().sq_deferred(), 1);
    }

    #[test]
    fn signaled_cqe_retires_prior_unsignaled_slots_in_one_batch() {
        let (mut a, _, qa, _, (a_scq, _), _) = pair();
        let src = a.register_mr(8, Access::NONE);
        // Three unsignaled sends finish transmission: slots stay held.
        for wr_id in 1..=3 {
            let prep = a
                .prepare_send(qa, SendWr::send(wr_id, src.sge(0, 8)).unsignaled())
                .unwrap();
            let mut fx = Vec::new();
            a.tx_finished(qa, prep.completion_at_tx, &mut fx);
        }
        assert_eq!(a.qp(qa).unwrap().sq_outstanding(), 3);
        // The fourth, signaled send retires all four slots at once.
        let prep = a.prepare_send(qa, SendWr::send(4, src.sge(0, 8))).unwrap();
        assert_eq!(a.qp(qa).unwrap().sq_outstanding(), 4);
        let mut fx = Vec::new();
        a.tx_finished(qa, prep.completion_at_tx, &mut fx);
        assert_eq!(a.qp(qa).unwrap().sq_outstanding(), 0);
        assert_eq!(a.qp(qa).unwrap().sq_deferred(), 0);
        let cqes = drain(&mut a, a_scq);
        assert_eq!(cqes.len(), 1, "only the signaled WQE produced a CQE");
        assert_eq!(cqes[0].wr_id, 4);
    }

    #[test]
    fn send_payload_larger_than_recv_buffer_is_fatal() {
        // Message-oriented semantics: data that does not fit is an error,
        // not a partial delivery (paper §I contrasts this with streams).
        let (mut a, mut b, qa, qb, _, _) = pair();
        let src = a.register_mr(64, Access::NONE);
        let dst = b.register_mr(16, Access::LOCAL_WRITE);
        b.post_recv(qb, RecvWr::new(1, dst.full_sge())).unwrap();
        let prep = a.prepare_send(qa, SendWr::send(1, src.sge(0, 64))).unwrap();
        let fx = b.handle_wire(prep.msg);
        assert!(matches!(
            fx[0],
            Effect::Fatal {
                status: WcStatus::LocalProtectionError,
                ..
            }
        ));
    }

    #[test]
    fn create_qp_requires_existing_cqs() {
        let mut h = HcaCore::new(NodeId(0), HcaConfig::default());
        let err = h.create_qp(CqId(99), CqId(98), QpCaps::default());
        assert!(matches!(err, Err(VerbsError::UnknownCq(_))));
    }

    #[test]
    fn post_recv_validates_sge() {
        let (_, mut b, _, qb, _, _) = pair();
        let dst = b.register_mr(8, Access::LOCAL_WRITE);
        let bad = Sge::new(dst.addr, 64, dst.key);
        assert!(matches!(
            b.post_recv(qb, RecvWr::new(1, bad)),
            Err(VerbsError::OutOfBounds { .. })
        ));
        assert!(matches!(
            b.post_recv(qb, RecvWr::new(1, Sge::new(0, 1, MrKey(999)))),
            Err(VerbsError::UnknownKey(_))
        ));
    }

    #[test]
    fn arm_and_notify_cycle() {
        let (mut a, mut b, qa, qb, _, (_, b_rcq)) = pair();
        let src = a.register_mr(8, Access::NONE);
        let dst = b.register_mr(8, Access::LOCAL_WRITE);
        b.post_recv(qb, RecvWr::new(1, dst.full_sge())).unwrap();
        b.post_recv(qb, RecvWr::new(2, dst.full_sge())).unwrap();
        assert!(!b.arm_cq(b_rcq).unwrap());

        let prep = a.prepare_send(qa, SendWr::send(1, src.sge(0, 8))).unwrap();
        let fx = b.handle_wire(prep.msg);
        assert!(matches!(fx[0], Effect::Completion { notify: true, .. }));

        // Second completion without re-arming does not notify.
        let prep = a.prepare_send(qa, SendWr::send(2, src.sge(0, 8))).unwrap();
        let fx = b.handle_wire(prep.msg);
        assert!(matches!(fx[0], Effect::Completion { notify: false, .. }));

        // Arming with pending completions reports immediately.
        assert!(b.arm_cq(b_rcq).unwrap());
    }
}
