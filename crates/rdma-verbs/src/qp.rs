//! Queue pairs.
//!
//! A [`QueuePair`] models a reliable-connected (RC) QP: it must be
//! connected to exactly one remote QP, delivers in order, and consumes
//! posted receive WQEs for incoming SENDs and RDMA-WRITE-WITH-IMM
//! notifications. The state machine is the usual
//! RESET → INIT → RTR → RTS progression collapsed to the transitions the
//! simulator needs; operations posted in the wrong state fail exactly as
//! with real verbs.

use std::collections::VecDeque;

use simnet::SimTime;

use crate::types::{CqId, NodeId, QpNum, RecvWr, Result, VerbsError};

/// QP lifecycle states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QpState {
    /// Fresh; nothing may be posted.
    Reset,
    /// Initialized; receives may be posted (real apps pre-post RECVs
    /// here, and the EXS credit scheme depends on that — paper §II-B).
    Init,
    /// Ready to receive.
    ReadyToReceive,
    /// Ready to send (fully connected).
    ReadyToSend,
    /// Broken; all further work is flushed.
    Error,
}

/// Static capabilities chosen at QP creation.
#[derive(Clone, Copy, Debug)]
pub struct QpCaps {
    /// Maximum outstanding send WQEs.
    pub max_send_wr: usize,
    /// Maximum outstanding receive WQEs.
    pub max_recv_wr: usize,
    /// Maximum inline payload accepted by `post_send`.
    pub max_inline: usize,
}

impl Default for QpCaps {
    fn default() -> Self {
        QpCaps {
            max_send_wr: 512,
            max_recv_wr: 512,
            max_inline: 256,
        }
    }
}

/// A simulated RC queue pair.
pub struct QueuePair {
    qpn: QpNum,
    state: QpState,
    caps: QpCaps,
    send_cq: CqId,
    recv_cq: CqId,
    remote: Option<(NodeId, QpNum)>,
    /// Posted, not-yet-consumed receive WQEs.
    rq: VecDeque<RecvWr>,
    /// Number of send WQEs posted whose wire transmission has not yet
    /// finished (bounds the SQ).
    sq_outstanding: usize,
    /// Send WQEs whose transmission finished *unsignaled*: their SQ
    /// slots stay occupied until the next signaled completion retires
    /// the whole run in one batch, as a real HCA only lets the ULP
    /// reclaim SQ entries when a CQE is generated (selective
    /// signaling).
    sq_deferred: usize,
    /// When the HCA's per-QP WQE processing pipeline frees up (the DES
    /// driver uses this to serialize WQE launches).
    pub(crate) hca_free_at: SimTime,
    total_recv_posted: u64,
    total_send_posted: u64,
}

impl QueuePair {
    /// Creates a QP in the RESET state.
    pub fn new(qpn: QpNum, send_cq: CqId, recv_cq: CqId, caps: QpCaps) -> Self {
        QueuePair {
            qpn,
            state: QpState::Reset,
            caps,
            send_cq,
            recv_cq,
            remote: None,
            rq: VecDeque::with_capacity(caps.max_recv_wr.min(1024)),
            sq_outstanding: 0,
            sq_deferred: 0,
            hca_free_at: SimTime::ZERO,
            total_recv_posted: 0,
            total_send_posted: 0,
        }
    }

    /// The QP number.
    pub fn qpn(&self) -> QpNum {
        self.qpn
    }

    /// Current state.
    pub fn state(&self) -> QpState {
        self.state
    }

    /// Capabilities.
    pub fn caps(&self) -> &QpCaps {
        &self.caps
    }

    /// CQ receiving send-side completions.
    pub fn send_cq(&self) -> CqId {
        self.send_cq
    }

    /// CQ receiving receive-side completions.
    pub fn recv_cq(&self) -> CqId {
        self.recv_cq
    }

    /// The connected peer, if any.
    pub fn remote(&self) -> Option<(NodeId, QpNum)> {
        self.remote
    }

    /// RESET → INIT.
    pub fn to_init(&mut self) -> Result<()> {
        if self.state != QpState::Reset {
            return Err(VerbsError::InvalidQpState);
        }
        self.state = QpState::Init;
        Ok(())
    }

    /// INIT → RTR, binding the remote QP.
    pub fn to_rtr(&mut self, remote: (NodeId, QpNum)) -> Result<()> {
        if self.state != QpState::Init {
            return Err(VerbsError::InvalidQpState);
        }
        self.remote = Some(remote);
        self.state = QpState::ReadyToReceive;
        Ok(())
    }

    /// RTR → RTS.
    pub fn to_rts(&mut self) -> Result<()> {
        if self.state != QpState::ReadyToReceive {
            return Err(VerbsError::InvalidQpState);
        }
        self.state = QpState::ReadyToSend;
        Ok(())
    }

    /// Any state → ERROR. Pending receives are drained and returned so
    /// the HCA can flush them with `WrFlushError` completions.
    pub fn to_error(&mut self) -> Vec<RecvWr> {
        self.state = QpState::Error;
        self.rq.drain(..).collect()
    }

    /// True when sends may be posted.
    pub fn can_send(&self) -> bool {
        self.state == QpState::ReadyToSend
    }

    /// True when receives may be posted.
    pub fn can_post_recv(&self) -> bool {
        matches!(
            self.state,
            QpState::Init | QpState::ReadyToReceive | QpState::ReadyToSend
        )
    }

    /// Posts a receive WQE.
    pub fn post_recv(&mut self, wr: RecvWr) -> Result<()> {
        if !self.can_post_recv() {
            return Err(VerbsError::InvalidQpState);
        }
        if self.rq.len() >= self.caps.max_recv_wr {
            return Err(VerbsError::RqFull);
        }
        self.rq.push_back(wr);
        self.total_recv_posted += 1;
        Ok(())
    }

    /// Consumes the receive WQE at the head of the RQ (an incoming SEND
    /// or WWI notification arrived). `None` means receiver-not-ready.
    pub fn consume_recv(&mut self) -> Option<RecvWr> {
        self.rq.pop_front()
    }

    /// Number of posted, unconsumed receive WQEs.
    pub fn rq_len(&self) -> usize {
        self.rq.len()
    }

    /// Reserves a send-queue slot. Fails with `SqFull` at capacity.
    pub fn reserve_sq_slot(&mut self) -> Result<()> {
        if !self.can_send() {
            return Err(if self.state == QpState::Error {
                VerbsError::InvalidQpState
            } else if self.remote.is_none() {
                VerbsError::NotConnected
            } else {
                VerbsError::InvalidQpState
            });
        }
        if self.sq_outstanding >= self.caps.max_send_wr {
            return Err(VerbsError::SqFull);
        }
        self.sq_outstanding += 1;
        self.total_send_posted += 1;
        Ok(())
    }

    /// Releases a send-queue slot (wire transmission finished).
    pub fn release_sq_slot(&mut self) {
        debug_assert!(self.sq_outstanding > 0, "SQ slot underflow");
        self.sq_outstanding = self.sq_outstanding.saturating_sub(1);
    }

    /// Marks an unsignaled WQE's transmission as finished *without*
    /// freeing its SQ slot: the slot is retired later, in one batch,
    /// by the next signaled completion on this QP
    /// ([`QueuePair::release_sq_batch`]).
    pub fn defer_sq_release(&mut self) {
        debug_assert!(
            self.sq_deferred < self.sq_outstanding,
            "deferring more SQ slots than are outstanding"
        );
        self.sq_deferred = (self.sq_deferred + 1).min(self.sq_outstanding);
    }

    /// Retires the signaled WQE's slot plus every previously deferred
    /// unsignaled slot in one batch, returning how many slots were
    /// freed. Sound because the RC channel is FIFO: a signaled CQE
    /// proves all WQEs posted before it have completed.
    pub fn release_sq_batch(&mut self) -> usize {
        let n = self.sq_deferred + 1;
        debug_assert!(self.sq_outstanding >= n, "SQ batch underflow");
        self.sq_outstanding = self.sq_outstanding.saturating_sub(n);
        self.sq_deferred = 0;
        n
    }

    /// Outstanding send WQEs.
    pub fn sq_outstanding(&self) -> usize {
        self.sq_outstanding
    }

    /// Send WQEs off the wire but still holding their SQ slot while
    /// they await a signaled CQE.
    pub fn sq_deferred(&self) -> usize {
        self.sq_deferred
    }

    /// Lifetime receive posts.
    pub fn total_recv_posted(&self) -> u64 {
        self.total_recv_posted
    }

    /// Lifetime send posts.
    pub fn total_send_posted(&self) -> u64 {
        self.total_send_posted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::MrKey;
    use crate::types::Sge;

    fn qp() -> QueuePair {
        QueuePair::new(QpNum(1), CqId(1), CqId(2), QpCaps::default())
    }

    fn connected_qp() -> QueuePair {
        let mut q = qp();
        q.to_init().unwrap();
        q.to_rtr((NodeId(1), QpNum(9))).unwrap();
        q.to_rts().unwrap();
        q
    }

    #[test]
    fn lifecycle_happy_path() {
        let mut q = qp();
        assert_eq!(q.state(), QpState::Reset);
        q.to_init().unwrap();
        assert!(q.can_post_recv());
        assert!(!q.can_send());
        q.to_rtr((NodeId(1), QpNum(9))).unwrap();
        q.to_rts().unwrap();
        assert!(q.can_send());
        assert_eq!(q.remote(), Some((NodeId(1), QpNum(9))));
    }

    #[test]
    fn invalid_transitions_rejected() {
        let mut q = qp();
        assert_eq!(
            q.to_rtr((NodeId(0), QpNum(0))),
            Err(VerbsError::InvalidQpState)
        );
        assert_eq!(q.to_rts(), Err(VerbsError::InvalidQpState));
        q.to_init().unwrap();
        assert_eq!(q.to_init(), Err(VerbsError::InvalidQpState));
    }

    #[test]
    fn recv_before_rts_is_allowed() {
        // Pre-posting receives before connecting is the whole point of
        // the credit scheme (paper §II-B).
        let mut q = qp();
        q.to_init().unwrap();
        q.post_recv(RecvWr::empty(1)).unwrap();
        assert_eq!(q.rq_len(), 1);
    }

    #[test]
    fn recv_in_reset_rejected() {
        let mut q = qp();
        assert_eq!(
            q.post_recv(RecvWr::empty(1)),
            Err(VerbsError::InvalidQpState)
        );
    }

    #[test]
    fn rq_capacity_enforced() {
        let mut q = QueuePair::new(
            QpNum(1),
            CqId(1),
            CqId(2),
            QpCaps {
                max_recv_wr: 2,
                ..QpCaps::default()
            },
        );
        q.to_init().unwrap();
        q.post_recv(RecvWr::empty(1)).unwrap();
        q.post_recv(RecvWr::empty(2)).unwrap();
        assert_eq!(q.post_recv(RecvWr::empty(3)), Err(VerbsError::RqFull));
    }

    #[test]
    fn recv_consumed_fifo() {
        let mut q = connected_qp();
        let sge = Sge::new(0x1000, 8, MrKey(1));
        q.post_recv(RecvWr::new(10, sge)).unwrap();
        q.post_recv(RecvWr::new(11, sge)).unwrap();
        assert_eq!(q.consume_recv().unwrap().wr_id, 10);
        assert_eq!(q.consume_recv().unwrap().wr_id, 11);
        assert!(q.consume_recv().is_none());
    }

    #[test]
    fn sq_slots_bound_outstanding() {
        let mut q = QueuePair::new(
            QpNum(1),
            CqId(1),
            CqId(2),
            QpCaps {
                max_send_wr: 1,
                ..QpCaps::default()
            },
        );
        q.to_init().unwrap();
        q.to_rtr((NodeId(1), QpNum(2))).unwrap();
        q.to_rts().unwrap();
        q.reserve_sq_slot().unwrap();
        assert_eq!(q.reserve_sq_slot(), Err(VerbsError::SqFull));
        q.release_sq_slot();
        q.reserve_sq_slot().unwrap();
        assert_eq!(q.total_send_posted(), 2);
    }

    #[test]
    fn signaled_release_retires_deferred_batch() {
        let mut q = connected_qp();
        for _ in 0..5 {
            q.reserve_sq_slot().unwrap();
        }
        // Four unsignaled transmissions finish: their slots stay held.
        for _ in 0..4 {
            q.defer_sq_release();
        }
        assert_eq!(q.sq_outstanding(), 5);
        assert_eq!(q.sq_deferred(), 4);
        // The signaled completion retires all five in one batch.
        assert_eq!(q.release_sq_batch(), 5);
        assert_eq!(q.sq_outstanding(), 0);
        assert_eq!(q.sq_deferred(), 0);
    }

    #[test]
    fn send_before_connect_rejected() {
        let mut q = qp();
        q.to_init().unwrap();
        assert!(q.reserve_sq_slot().is_err());
    }

    #[test]
    fn error_state_flushes_rq() {
        let mut q = connected_qp();
        q.post_recv(RecvWr::empty(1)).unwrap();
        q.post_recv(RecvWr::empty(2)).unwrap();
        let flushed = q.to_error();
        assert_eq!(flushed.len(), 2);
        assert_eq!(q.state(), QpState::Error);
        assert!(q.reserve_sq_slot().is_err());
        assert!(q.post_recv(RecvWr::empty(3)).is_err());
    }
}
