//! Identifier newtypes, access flags, work-request descriptors, completion
//! entries, and the error type shared by all verbs objects.
//!
//! The shapes deliberately mirror the OFA verbs API that the UNH EXS
//! library was written against: work requests carry scatter/gather entries
//! expressed as `(virtual address, length, lkey)`, RDMA operations carry
//! `(remote address, rkey)`, and completions are reported as work
//! completions (`Cqe`) holding the work-request id, opcode, byte length
//! and optional immediate data.

use std::fmt;

use bytes::Bytes;

/// Identifies a simulated host (one HCA per node).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index form for vectors keyed by node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Queue pair number, unique per node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct QpNum(pub u32);

/// Completion queue id, unique per node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CqId(pub u32);

/// Memory key. The simulator hands out a single key per region that acts
/// as both lkey and rkey, as Mellanox HCAs commonly do.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MrKey(pub u32);

/// Application-chosen work-request identifier, returned in completions.
pub type WrId = u64;

/// Memory-region access permissions.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Access(u8);

impl Access {
    /// Local read is always implied; this grants local write (needed for
    /// receive buffers and RDMA READ targets).
    pub const LOCAL_WRITE: Access = Access(0b001);
    /// Remote peers may RDMA WRITE into the region.
    pub const REMOTE_WRITE: Access = Access(0b010);
    /// Remote peers may RDMA READ from the region.
    pub const REMOTE_READ: Access = Access(0b100);

    /// No remote access, no local write: a send-only source buffer.
    pub const NONE: Access = Access(0);

    /// Union of flags.
    #[inline]
    pub const fn union(self, other: Access) -> Access {
        Access(self.0 | other.0)
    }

    /// True if every flag in `flags` is present.
    #[inline]
    pub const fn contains(self, flags: Access) -> bool {
        self.0 & flags.0 == flags.0
    }

    /// The typical flags for an EXS buffer: locally writable and remotely
    /// writable (direct transfers land here).
    pub const fn local_remote_write() -> Access {
        Access(Self::LOCAL_WRITE.0 | Self::REMOTE_WRITE.0)
    }

    /// All flags.
    pub const fn all() -> Access {
        Access(0b111)
    }
}

impl std::ops::BitOr for Access {
    type Output = Access;
    fn bitor(self, rhs: Access) -> Access {
        self.union(rhs)
    }
}

/// One scatter/gather element: a span of registered local memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Sge {
    /// Virtual address inside a registered region.
    pub addr: u64,
    /// Length in bytes.
    pub len: u32,
    /// Local key of the registered region.
    pub lkey: MrKey,
}

impl Sge {
    /// Convenience constructor.
    pub fn new(addr: u64, len: u32, lkey: MrKey) -> Self {
        Sge { addr, len, lkey }
    }
}

/// Remote target of an RDMA operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RemoteAddr {
    /// Remote virtual address (as advertised by the peer).
    pub addr: u64,
    /// Remote key authorizing the access.
    pub rkey: MrKey,
}

/// Send-queue operation codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendOpcode {
    /// Channel-semantics SEND, consuming a posted RECV at the peer.
    Send,
    /// One-sided RDMA WRITE; the peer application is passive.
    RdmaWrite,
    /// RDMA WRITE WITH IMM ("WWI" in the paper): one-sided placement plus
    /// a notification consuming a posted RECV at the peer.
    RdmaWriteImm,
    /// One-sided RDMA READ.
    RdmaRead,
}

/// A send-queue work request.
#[derive(Clone, Debug)]
pub struct SendWr {
    /// Application identifier, echoed in the completion.
    pub wr_id: WrId,
    /// Operation.
    pub opcode: SendOpcode,
    /// Gather entry naming registered source memory (exclusive with
    /// `inline`). For `RdmaRead` this is the local *destination*.
    pub sge: Option<Sge>,
    /// Inline payload: data copied into the WQE at post time, so the
    /// source buffer is reusable immediately. Only for small messages
    /// (see `QpCaps::max_inline`); the EXS library uses this for ADVERTs
    /// and ACKs as the paper recommends (§II-A).
    pub inline: Option<Bytes>,
    /// Immediate data for `Send` (optional) and `RdmaWriteImm` (required).
    pub imm: Option<u32>,
    /// Remote target, required for RDMA operations.
    pub remote: Option<RemoteAddr>,
    /// Whether a send completion should be generated. Unsignaled sends
    /// complete silently (their buffers must be managed by a later
    /// signaled WQE, exactly as with real verbs).
    pub signaled: bool,
}

impl SendWr {
    /// A signaled SEND from registered memory.
    pub fn send(wr_id: WrId, sge: Sge) -> Self {
        SendWr {
            wr_id,
            opcode: SendOpcode::Send,
            sge: Some(sge),
            inline: None,
            imm: None,
            remote: None,
            signaled: true,
        }
    }

    /// A signaled SEND of inline data.
    pub fn send_inline(wr_id: WrId, data: impl Into<Bytes>) -> Self {
        SendWr {
            wr_id,
            opcode: SendOpcode::Send,
            sge: None,
            inline: Some(data.into()),
            imm: None,
            remote: None,
            signaled: true,
        }
    }

    /// A signaled RDMA WRITE from registered memory.
    pub fn write(wr_id: WrId, sge: Sge, remote: RemoteAddr) -> Self {
        SendWr {
            wr_id,
            opcode: SendOpcode::RdmaWrite,
            sge: Some(sge),
            inline: None,
            imm: None,
            remote: Some(remote),
            signaled: true,
        }
    }

    /// A signaled RDMA WRITE WITH IMM from registered memory.
    pub fn write_imm(wr_id: WrId, sge: Sge, remote: RemoteAddr, imm: u32) -> Self {
        SendWr {
            wr_id,
            opcode: SendOpcode::RdmaWriteImm,
            sge: Some(sge),
            inline: None,
            imm: Some(imm),
            remote: Some(remote),
            signaled: true,
        }
    }

    /// A signaled zero-length RDMA WRITE WITH IMM (pure notification).
    pub fn write_imm_empty(wr_id: WrId, remote: RemoteAddr, imm: u32) -> Self {
        SendWr {
            wr_id,
            opcode: SendOpcode::RdmaWriteImm,
            sge: None,
            inline: Some(Bytes::new()),
            imm: Some(imm),
            remote: Some(remote),
            signaled: true,
        }
    }

    /// A signaled RDMA READ into registered memory.
    pub fn read(wr_id: WrId, local: Sge, remote: RemoteAddr) -> Self {
        SendWr {
            wr_id,
            opcode: SendOpcode::RdmaRead,
            sge: Some(local),
            inline: None,
            imm: None,
            remote: Some(remote),
            signaled: true,
        }
    }

    /// Marks the request unsignaled (no send-side completion).
    pub fn unsignaled(mut self) -> Self {
        self.signaled = false;
        self
    }

    /// Payload length in bytes this WQE will put on the wire (0 for READ
    /// requests, which only carry a descriptor).
    pub fn payload_len(&self) -> u64 {
        if self.opcode == SendOpcode::RdmaRead {
            return 0;
        }
        if let Some(b) = &self.inline {
            b.len() as u64
        } else if let Some(s) = &self.sge {
            s.len as u64
        } else {
            0
        }
    }
}

/// A receive-queue work request.
#[derive(Clone, Copy, Debug)]
pub struct RecvWr {
    /// Application identifier, echoed in the completion.
    pub wr_id: WrId,
    /// Target registered memory. `None` posts a zero-length RECV that can
    /// only absorb pure notifications.
    pub sge: Option<Sge>,
}

impl RecvWr {
    /// A RECV into registered memory.
    pub fn new(wr_id: WrId, sge: Sge) -> Self {
        RecvWr {
            wr_id,
            sge: Some(sge),
        }
    }

    /// A zero-length RECV for immediate-only notifications.
    pub fn empty(wr_id: WrId) -> Self {
        RecvWr { wr_id, sge: None }
    }
}

/// Completion opcodes (work-completion side).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WcOpcode {
    /// A SEND finished locally.
    Send,
    /// An RDMA WRITE (with or without IMM) finished locally.
    RdmaWrite,
    /// An RDMA READ response arrived.
    RdmaRead,
    /// A RECV was consumed by an incoming SEND.
    Recv,
    /// A RECV was consumed by an incoming RDMA WRITE WITH IMM.
    RecvRdmaWithImm,
}

/// Completion status.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WcStatus {
    /// The operation completed successfully.
    Success,
    /// The remote side rejected the access (bad rkey, bounds, permission).
    RemoteAccessError,
    /// Receiver-not-ready: the peer had no posted RECV. Real RC retries a
    /// configured number of times and then fails the QP; the simulator
    /// fails fast because the EXS credit protocol must prevent this
    /// entirely.
    RnrRetryExceeded,
    /// A local check failed while processing the WQE.
    LocalProtectionError,
    /// The WQE was flushed because the QP entered the error state.
    WrFlushError,
}

/// A work completion.
#[derive(Clone, Copy, Debug)]
pub struct Cqe {
    /// Work-request id from the originating WQE.
    pub wr_id: WrId,
    /// Completion status.
    pub status: WcStatus,
    /// What completed.
    pub opcode: WcOpcode,
    /// Bytes transferred (receive side: bytes placed).
    pub byte_len: u32,
    /// Immediate data, for `Recv`/`RecvRdmaWithImm`.
    pub imm: Option<u32>,
    /// The QP this completion belongs to.
    pub qpn: QpNum,
}

/// Errors returned synchronously by verbs calls.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerbsError {
    /// The QP number does not exist on this node.
    UnknownQp(QpNum),
    /// The CQ id does not exist on this node.
    UnknownCq(CqId),
    /// The memory key does not name a registered region.
    UnknownKey(MrKey),
    /// The QP is not in a state that allows the operation.
    InvalidQpState,
    /// The QP is not connected to a peer.
    NotConnected,
    /// An SGE points outside its registered region.
    OutOfBounds {
        /// Requested virtual address.
        addr: u64,
        /// Requested length.
        len: u64,
    },
    /// The region does not permit the requested access.
    AccessViolation,
    /// Inline data exceeds the QP's `max_inline`.
    InlineTooLarge {
        /// Requested inline size.
        len: usize,
        /// Allowed maximum.
        max: usize,
    },
    /// The send queue is full.
    SqFull,
    /// The receive queue is full.
    RqFull,
    /// Work request shape invalid for its opcode (e.g. RDMA without a
    /// remote address).
    MalformedWr(&'static str),
}

impl fmt::Display for VerbsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerbsError::UnknownQp(q) => write!(f, "unknown queue pair {q:?}"),
            VerbsError::UnknownCq(c) => write!(f, "unknown completion queue {c:?}"),
            VerbsError::UnknownKey(k) => write!(f, "unknown memory key {k:?}"),
            VerbsError::InvalidQpState => write!(f, "queue pair in wrong state"),
            VerbsError::NotConnected => write!(f, "queue pair not connected"),
            VerbsError::OutOfBounds { addr, len } => {
                write!(f, "memory access out of bounds: addr={addr:#x} len={len}")
            }
            VerbsError::AccessViolation => write!(f, "memory access violates permissions"),
            VerbsError::InlineTooLarge { len, max } => {
                write!(f, "inline data of {len} bytes exceeds max_inline {max}")
            }
            VerbsError::SqFull => write!(f, "send queue full"),
            VerbsError::RqFull => write!(f, "receive queue full"),
            VerbsError::MalformedWr(why) => write!(f, "malformed work request: {why}"),
        }
    }
}

impl std::error::Error for VerbsError {}

/// Result alias for verbs calls.
pub type Result<T> = std::result::Result<T, VerbsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_flags_compose() {
        let a = Access::LOCAL_WRITE | Access::REMOTE_WRITE;
        assert!(a.contains(Access::LOCAL_WRITE));
        assert!(a.contains(Access::REMOTE_WRITE));
        assert!(!a.contains(Access::REMOTE_READ));
        assert!(Access::all().contains(a));
        assert!(a.contains(Access::NONE));
    }

    #[test]
    fn payload_len_by_shape() {
        let sge = Sge::new(0x1000, 64, MrKey(1));
        let remote = RemoteAddr {
            addr: 0x2000,
            rkey: MrKey(2),
        };
        assert_eq!(SendWr::send(1, sge).payload_len(), 64);
        assert_eq!(SendWr::send_inline(1, vec![0u8; 10]).payload_len(), 10);
        assert_eq!(SendWr::write(1, sge, remote).payload_len(), 64);
        assert_eq!(SendWr::write_imm(1, sge, remote, 7).payload_len(), 64);
        assert_eq!(SendWr::write_imm_empty(1, remote, 7).payload_len(), 0);
        // READ requests carry no payload toward the responder.
        assert_eq!(SendWr::read(1, sge, remote).payload_len(), 0);
    }

    #[test]
    fn unsignaled_clears_flag() {
        let sge = Sge::new(0, 1, MrKey(0));
        let wr = SendWr::send(9, sge).unsignaled();
        assert!(!wr.signaled);
        assert_eq!(wr.wr_id, 9);
    }

    #[test]
    fn error_display_is_informative() {
        let e = VerbsError::OutOfBounds {
            addr: 0x10,
            len: 32,
        };
        let s = e.to_string();
        assert!(s.contains("0x10"));
        assert!(s.contains("32"));
        assert!(VerbsError::SqFull.to_string().contains("send queue"));
    }
}
