//! Simulated wire messages.
//!
//! A [`WireMessage`] is the unit the fabric carries between HCAs: one RDMA
//! operation's worth of payload plus its routing and operation descriptor.
//! Packetization below this level is a timing concern handled by the link
//! model (`simnet::link`); reliable-connected channels deliver operations
//! in order, so simulating at operation granularity preserves every
//! ordering property the protocol layer can observe.

use bytes::Bytes;

use crate::types::{MrKey, NodeId, QpNum};

/// The operation carried by a wire message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireOp {
    /// Channel-semantics SEND (consumes a RECV at the destination).
    Send {
        /// Optional immediate data.
        imm: Option<u32>,
    },
    /// One-sided RDMA WRITE.
    Write {
        /// Destination virtual address.
        raddr: u64,
        /// Authorizing remote key.
        rkey: MrKey,
    },
    /// RDMA WRITE WITH IMM: placement plus notification (consumes a RECV).
    WriteImm {
        /// Destination virtual address.
        raddr: u64,
        /// Authorizing remote key.
        rkey: MrKey,
        /// Immediate data delivered with the notification.
        imm: u32,
    },
    /// RDMA READ request (no payload; the descriptor asks the responder
    /// to return `len` bytes from `raddr`).
    ReadReq {
        /// Source virtual address at the responder.
        raddr: u64,
        /// Authorizing remote key.
        rkey: MrKey,
        /// Requested length.
        len: u32,
        /// Requester-side token correlating the response.
        token: u64,
    },
    /// RDMA READ response carrying the requested bytes.
    ReadResp {
        /// Token from the matching `ReadReq`.
        token: u64,
    },
}

/// One operation in flight between two HCAs.
#[derive(Clone, Debug)]
pub struct WireMessage {
    /// Originating node and QP.
    pub src: (NodeId, QpNum),
    /// Destination node and QP.
    pub dst: (NodeId, QpNum),
    /// Operation descriptor.
    pub op: WireOp,
    /// Payload bytes (empty for `ReadReq` and pure notifications).
    pub payload: Bytes,
}

impl WireMessage {
    /// Payload length in bytes.
    pub fn payload_len(&self) -> u64 {
        self.payload.len() as u64
    }

    /// Destination node.
    pub fn dst_node(&self) -> NodeId {
        self.dst.0
    }

    /// Source node.
    pub fn src_node(&self) -> NodeId {
        self.src.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let m = WireMessage {
            src: (NodeId(0), QpNum(1)),
            dst: (NodeId(1), QpNum(2)),
            op: WireOp::Send { imm: Some(5) },
            payload: Bytes::from_static(b"abc"),
        };
        assert_eq!(m.payload_len(), 3);
        assert_eq!(m.src_node(), NodeId(0));
        assert_eq!(m.dst_node(), NodeId(1));
    }
}
