//! Real-thread driver.
//!
//! [`ThreadNet`] runs the same [`HcaCore`] state machines as the
//! discrete-event driver, but under genuine OS concurrency: application
//! threads post work from wherever they like, per-link delivery threads
//! carry wire messages (preserving the FIFO guarantee of a
//! reliable-connected channel, with an optional real propagation
//! delay), and receivers block on a condition variable until
//! completions arrive.
//!
//! The paper's problem statement asks for "a thread-safe algorithm"
//! (§I); the deterministic simulator cannot exercise data races, so
//! this backend exists to do exactly that — the concurrency tests hammer
//! one node from many threads while deliveries land from link threads.
//! Timing measurements still belong to the deterministic driver: real
//! threads give real (noisy) time.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Condvar, Mutex};

use crate::hca::{Effect, HcaConfig, HcaCore, PreparedSend};
use crate::types::{CqId, Cqe, NodeId, QpNum, RecvWr, Result, SendWr};
use crate::wire::WireMessage;

/// One node: the HCA core behind a lock, plus completion signalling.
pub struct ThreadNode {
    id: NodeId,
    hca: Mutex<HcaCore>,
    /// Bumped whenever a completion lands; sleepers re-check their CQs.
    generation: AtomicU64,
    wakeup: Mutex<()>,
    condvar: Condvar,
}

impl ThreadNode {
    /// Wakes every thread parked in [`ThreadNode::wait_any`] without a
    /// completion having landed. Used to nudge service threads when
    /// out-of-band work arrives (e.g. a cross-shard command queued for
    /// a parked reactor shard); spurious wakeups are harmless since
    /// sleepers re-check their state.
    pub fn notify(&self) {
        self.generation.fetch_add(1, Ordering::Release);
        let _guard = self.wakeup.lock();
        self.condvar.notify_all();
    }

    /// The node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Runs a closure against the locked HCA (setup, registration,
    /// memory access).
    pub fn with_hca<R>(&self, f: impl FnOnce(&mut HcaCore) -> R) -> R {
        f(&mut self.hca.lock())
    }

    /// Posts a receive work request (thread-safe).
    pub fn post_recv(&self, qpn: QpNum, wr: RecvWr) -> Result<()> {
        self.hca.lock().post_recv(qpn, wr)
    }

    /// Polls up to `max` completions (thread-safe).
    pub fn poll_cq(&self, cq: CqId, max: usize, out: &mut Vec<Cqe>) -> Result<usize> {
        self.hca.lock().poll_cq(cq, max, out)
    }

    /// Blocks until any completion lands anywhere on this node (the
    /// generation counter advances past `seen`) or the timeout elapses.
    /// Returns the new generation value. Callers poll their CQs after
    /// each wakeup — the multi-CQ analogue of a completion channel.
    pub fn wait_any(&self, seen: u64, timeout: Duration) -> u64 {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let gen = self.generation.load(Ordering::Acquire);
            if gen != seen {
                return gen;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return gen;
            }
            let mut guard = self.wakeup.lock();
            if self.generation.load(Ordering::Acquire) != seen {
                continue;
            }
            self.condvar
                .wait_for(&mut guard, deadline.saturating_duration_since(now));
        }
    }

    /// Current completion generation (pair with [`ThreadNode::wait_any`]).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Blocks until `cq` has at least one completion or the timeout
    /// elapses; returns the completions polled (possibly empty on
    /// timeout). This is the completion-channel wait (`ibv_get_cq_event`
    /// style) of the threaded backend.
    pub fn wait_cq(&self, cq: CqId, timeout: Duration) -> Vec<Cqe> {
        let deadline = std::time::Instant::now() + timeout;
        let mut out = Vec::new();
        loop {
            let gen = self.generation.load(Ordering::Acquire);
            self.hca
                .lock()
                .poll_cq(cq, usize::MAX, &mut out)
                .expect("wait on unknown CQ");
            if !out.is_empty() {
                return out;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return out;
            }
            let mut guard = self.wakeup.lock();
            // Re-check under the lock to avoid a lost wakeup between the
            // poll above and the wait below.
            if self.generation.load(Ordering::Acquire) != gen {
                continue;
            }
            self.condvar
                .wait_for(&mut guard, deadline.saturating_duration_since(now));
        }
    }
}

/// A fabric of [`ThreadNode`]s joined by delivery threads.
pub struct ThreadNet {
    nodes: Vec<Arc<ThreadNode>>,
    links: HashMap<(u32, u32), Sender<WireMessage>>,
    stop: Arc<AtomicBool>,
    handles: Vec<std::thread::JoinHandle<()>>,
    /// Messages handed to delivery threads but not yet applied at their
    /// destination; [`ThreadNet::quiesce`] waits for this to reach zero.
    in_flight: Arc<AtomicUsize>,
}

impl ThreadNet {
    /// An empty fabric.
    pub fn new() -> Self {
        ThreadNet {
            nodes: Vec::new(),
            links: HashMap::new(),
            stop: Arc::new(AtomicBool::new(false)),
            handles: Vec::new(),
            in_flight: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// Adds a node.
    pub fn add_node(&mut self, cfg: HcaConfig) -> Arc<ThreadNode> {
        let id = NodeId(self.nodes.len() as u32);
        let node = Arc::new(ThreadNode {
            id,
            hca: Mutex::new(HcaCore::new(id, cfg)),
            generation: AtomicU64::new(0),
            wakeup: Mutex::new(()),
            condvar: Condvar::new(),
        });
        self.nodes.push(node.clone());
        node
    }

    /// Connects two nodes with symmetric FIFO links; each direction gets
    /// a delivery thread applying `delay` of real propagation latency.
    pub fn connect_nodes(&mut self, a: &Arc<ThreadNode>, b: &Arc<ThreadNode>, delay: Duration) {
        for (src, dst) in [(a, b), (b, a)] {
            let (tx, rx) = unbounded::<WireMessage>();
            self.links.insert((src.id.0, dst.id.0), tx);
            let dst = dst.clone();
            let src_arc = src.clone();
            let stop = self.stop.clone();
            let in_flight = self.in_flight.clone();
            // The back-link may not exist yet; responder transmissions
            // (RDMA READ responses) are delivered by locking the peer
            // directly, preserving FIFO because this thread is the only
            // producer for that direction's responses.
            let handle = std::thread::spawn(move || {
                while let Ok(msg) = rx.recv() {
                    if stop.load(Ordering::Acquire) {
                        in_flight.fetch_sub(1, Ordering::AcqRel);
                        break;
                    }
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                    let effects = dst.hca.lock().handle_wire(msg);
                    apply_effects(&dst, &src_arc, effects);
                    in_flight.fetch_sub(1, Ordering::AcqRel);
                }
            });
            self.handles.push(handle);
        }
    }

    /// Posts a send on behalf of `node` (thread-safe): validates,
    /// captures the payload, hands the message to the link thread, and
    /// delivers the send completion (the buffer content is captured at
    /// post time, so the local completion is immediate in this backend).
    pub fn post_send(&self, node: &Arc<ThreadNode>, qpn: QpNum, wr: SendWr) -> Result<()> {
        let prepared: PreparedSend = {
            let mut hca = node.hca.lock();
            hca.prepare_send(qpn, wr)?
        };
        let dst = prepared.msg.dst_node();
        let tx = self
            .links
            .get(&(node.id.0, dst.0))
            .unwrap_or_else(|| panic!("no link from {:?} to {dst:?}", node.id));
        let is_read = prepared.is_read;
        let completion = prepared.completion_at_tx;
        self.in_flight.fetch_add(1, Ordering::AcqRel);
        tx.send(prepared.msg).expect("link thread alive");
        if !is_read {
            let mut effects = Vec::new();
            node.hca.lock().tx_finished(qpn, completion, &mut effects);
            if !effects.is_empty() {
                node.notify();
            }
        }
        Ok(())
    }

    /// Posts a chain of work requests on behalf of `node` as one
    /// postlist: all WQEs are validated and their payloads captured
    /// under a single HCA lock acquisition (the analogue of one
    /// doorbell write for a linked WQE chain), the wire messages are
    /// handed to the link thread in order, and all non-READ send
    /// completions are applied under one further lock acquisition with
    /// at most one wakeup notification.
    ///
    /// Mirrors the `ibv_post_send` bad_wr contract: on the first
    /// invalid WR the error is returned and the remaining WRs are not
    /// posted, but the WRs before it are already on the wire.
    pub fn post_send_list(
        &self,
        node: &Arc<ThreadNode>,
        qpn: QpNum,
        wrs: Vec<SendWr>,
    ) -> Result<()> {
        if wrs.is_empty() {
            return Ok(());
        }
        let mut prepared: Vec<PreparedSend> = Vec::with_capacity(wrs.len());
        let res = {
            let mut hca = node.hca.lock();
            let mut err = Ok(());
            for wr in wrs {
                match hca.prepare_send(qpn, wr) {
                    Ok(p) => prepared.push(p),
                    Err(e) => {
                        err = Err(e);
                        break;
                    }
                }
            }
            err
        };
        let mut finishes: Vec<Option<Cqe>> = Vec::with_capacity(prepared.len());
        for p in prepared {
            let dst = p.msg.dst_node();
            let tx = self
                .links
                .get(&(node.id.0, dst.0))
                .unwrap_or_else(|| panic!("no link from {:?} to {dst:?}", node.id));
            let is_read = p.is_read;
            let completion = p.completion_at_tx;
            self.in_flight.fetch_add(1, Ordering::AcqRel);
            tx.send(p.msg).expect("link thread alive");
            if !is_read {
                finishes.push(completion);
            }
        }
        if !finishes.is_empty() {
            let mut effects = Vec::new();
            {
                let mut hca = node.hca.lock();
                for completion in finishes {
                    hca.tx_finished(qpn, completion, &mut effects);
                }
            }
            if !effects.is_empty() {
                node.notify();
            }
        }
        res
    }

    /// Blocks until every message handed to a delivery thread has been
    /// applied at its destination. Only meaningful once the caller has
    /// stopped the threads that post new sends — with active posters
    /// the zero reading is just a momentary snapshot. Teardown paths
    /// use this to drain in-flight control traffic (late ACKs, credit
    /// returns) before deregistering the memory it lands in.
    pub fn quiesce(&self) {
        while self.in_flight.load(Ordering::Acquire) != 0 {
            std::thread::sleep(Duration::from_micros(50));
        }
    }

    /// Stops the delivery threads and joins them.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Dropping the senders closes the channels.
        self.links.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Default for ThreadNet {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for ThreadNet {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn apply_effects(dst: &Arc<ThreadNode>, src: &Arc<ThreadNode>, effects: Vec<Effect>) {
    let mut notified = false;
    for effect in effects {
        match effect {
            Effect::Completion { .. } => {
                if !notified {
                    dst.notify();
                    notified = true;
                }
            }
            Effect::Transmit(msg) => {
                // RDMA READ response: deliver synchronously to the
                // requester (this delivery thread is the only producer
                // for response traffic in this direction, so FIFO
                // holds).
                let effects = src.hca.lock().handle_wire(msg);
                let mut n2 = false;
                for e in effects {
                    match e {
                        Effect::Completion { .. } => {
                            if !n2 {
                                src.notify();
                                n2 = true;
                            }
                        }
                        Effect::Transmit(_) => unreachable!("responses do not chain"),
                        Effect::Fatal { detail, .. } => {
                            panic!("fatal verbs error on read response: {detail}")
                        }
                    }
                }
            }
            Effect::Fatal { qpn, detail, .. } => {
                panic!("fatal verbs error at {:?} qp {qpn:?}: {detail}", dst.id)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qp::QpCaps;
    use crate::types::{Access, WcOpcode};

    fn pair(delay: Duration) -> (ThreadNet, Arc<ThreadNode>, Arc<ThreadNode>) {
        let mut net = ThreadNet::new();
        let a = net.add_node(HcaConfig::default());
        let b = net.add_node(HcaConfig::default());
        net.connect_nodes(&a, &b, delay);
        (net, a, b)
    }

    fn connect(a: &Arc<ThreadNode>, b: &Arc<ThreadNode>) -> (QpNum, QpNum, CqId, CqId) {
        let (a_qp, a_scq) = a.with_hca(|h| {
            let scq = h.create_cq(1 << 14);
            let rcq = h.create_cq(1 << 14);
            let qp = h
                .create_qp(
                    scq,
                    rcq,
                    QpCaps {
                        max_send_wr: 1 << 13,
                        ..QpCaps::default()
                    },
                )
                .unwrap();
            (qp, scq)
        });
        let (b_qp, b_rcq) = b.with_hca(|h| {
            let scq = h.create_cq(1 << 14);
            let rcq = h.create_cq(1 << 14);
            let qp = h
                .create_qp(
                    scq,
                    rcq,
                    QpCaps {
                        max_recv_wr: 1 << 13,
                        ..QpCaps::default()
                    },
                )
                .unwrap();
            (qp, rcq)
        });
        a.with_hca(|h| h.connect_qp(a_qp, (b.id(), b_qp)).unwrap());
        b.with_hca(|h| h.connect_qp(b_qp, (a.id(), a_qp)).unwrap());
        (a_qp, b_qp, a_scq, b_rcq)
    }

    #[test]
    fn threaded_send_recv_roundtrip() {
        let (_net, a, b) = pair(Duration::ZERO);
        let (a_qp, b_qp, _a_scq, b_rcq) = connect(&a, &b);
        let net = _net;

        let src = a.with_hca(|h| h.register_mr(64, Access::NONE));
        let dst = b.with_hca(|h| h.register_mr(64, Access::LOCAL_WRITE));
        a.with_hca(|h| {
            h.mem_mut()
                .app_write(src.key, src.addr, b"threaded!")
                .unwrap()
        });
        b.post_recv(b_qp, RecvWr::new(7, dst.full_sge())).unwrap();

        net.post_send(&a, a_qp, SendWr::send(1, src.sge(0, 9)))
            .unwrap();

        let cqes = b.wait_cq(b_rcq, Duration::from_secs(5));
        assert_eq!(cqes.len(), 1);
        assert_eq!(cqes[0].wr_id, 7);
        assert_eq!(cqes[0].byte_len, 9);
        let mut buf = [0u8; 9];
        b.with_hca(|h| h.mem().app_read(dst.key, dst.addr, &mut buf).unwrap());
        assert_eq!(&buf, b"threaded!");
    }

    #[test]
    fn concurrent_senders_all_deliver_in_order_per_qp() {
        // Four threads hammer one QP with WWI notifications while the
        // receiver consumes them: exercises the HCA lock and the FIFO
        // delivery under real concurrency.
        const PER_THREAD: usize = 500;
        const THREADS: usize = 4;

        let (net, a, b) = pair(Duration::ZERO);
        let (a_qp, b_qp, _a_scq, b_rcq) = connect(&a, &b);
        let ring = b.with_hca(|h| h.register_mr(1 << 16, Access::local_remote_write()));
        for i in 0..(PER_THREAD * THREADS) as u64 {
            b.post_recv(b_qp, RecvWr::empty(i)).unwrap();
        }

        let net = Arc::new(net);
        let src = a.with_hca(|h| h.register_mr(64, Access::NONE));
        let counter = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let net = net.clone();
                let a = a.clone();
                let counter = counter.clone();
                s.spawn(move || {
                    for _ in 0..PER_THREAD {
                        let n = counter.fetch_add(1, Ordering::Relaxed);
                        let wr = SendWr::write_imm(
                            n,
                            src.sge(0, 8),
                            crate::types::RemoteAddr {
                                addr: ring.addr + (n % 8192),
                                rkey: ring.key,
                            },
                            n as u32,
                        )
                        .unsignaled();
                        // Retry on a momentarily full send queue.
                        loop {
                            match net.post_send(&a, a_qp, wr.clone()) {
                                Ok(()) => break,
                                Err(crate::types::VerbsError::SqFull) => std::thread::yield_now(),
                                Err(e) => panic!("post failed: {e}"),
                            }
                        }
                    }
                });
            }
        });

        // Drain all notifications.
        let mut got = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(20);
        while got.len() < PER_THREAD * THREADS {
            let cqes = b.wait_cq(b_rcq, Duration::from_millis(200));
            for c in &cqes {
                assert_eq!(c.opcode, WcOpcode::RecvRdmaWithImm);
            }
            got.extend(cqes.into_iter().map(|c| c.imm.unwrap()));
            assert!(
                std::time::Instant::now() < deadline,
                "drain timed out at {} of {}",
                got.len(),
                PER_THREAD * THREADS
            );
        }
        // Every message arrived exactly once.
        let mut sorted: Vec<u32> = got.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            PER_THREAD * THREADS,
            "lost or duplicated messages"
        );
    }

    #[test]
    fn postlist_signaled_cqe_retires_prior_unsignaled_slots() {
        // Seven unsignaled WWIs followed by one signaled WWI, posted as
        // a single postlist: the lone signaled completion must retire
        // all eight SQ slots in one batch, and exactly one CQE may
        // surface.
        let (net, a, b) = pair(Duration::ZERO);
        let (a_qp, b_qp, a_scq, _b_rcq) = connect(&a, &b);
        let ring = b.with_hca(|h| h.register_mr(1 << 12, Access::local_remote_write()));
        for i in 0..8u64 {
            b.post_recv(b_qp, RecvWr::empty(i)).unwrap();
        }
        let src = a.with_hca(|h| h.register_mr(64, Access::NONE));
        let mut wrs = Vec::new();
        for n in 0..8u64 {
            let wr = SendWr::write_imm(
                n,
                src.sge(0, 8),
                crate::types::RemoteAddr {
                    addr: ring.addr + n * 8,
                    rkey: ring.key,
                },
                n as u32,
            );
            wrs.push(if n < 7 { wr.unsignaled() } else { wr });
        }
        net.post_send_list(&a, a_qp, wrs).unwrap();

        // In this backend send completions land at post time, so the
        // batch retirement is observable immediately.
        a.with_hca(|h| {
            let qp = h.qp(a_qp).unwrap();
            assert_eq!(qp.sq_outstanding(), 0, "signaled CQE must retire the run");
            assert_eq!(qp.sq_deferred(), 0);
        });
        let cqes = a.wait_cq(a_scq, Duration::from_secs(5));
        assert_eq!(cqes.len(), 1, "unsignaled WQEs must not surface CQEs");
        assert_eq!(cqes[0].wr_id, 7);
        net.quiesce();
    }

    #[test]
    fn threaded_rdma_read() {
        let (net, a, b) = pair(Duration::from_millis(1));
        let (a_qp, _b_qp, a_scq, _b_rcq) = connect(&a, &b);
        let local = a.with_hca(|h| h.register_mr(32, Access::LOCAL_WRITE));
        let remote = b.with_hca(|h| h.register_mr(32, Access::REMOTE_READ | Access::LOCAL_WRITE));
        b.with_hca(|h| {
            h.mem_mut()
                .app_write(remote.key, remote.addr, b"read-far")
                .unwrap()
        });
        net.post_send(
            &a,
            a_qp,
            SendWr::read(
                3,
                local.sge(0, 8),
                crate::types::RemoteAddr {
                    addr: remote.addr,
                    rkey: remote.key,
                },
            ),
        )
        .unwrap();
        let cqes = a.wait_cq(a_scq, Duration::from_secs(5));
        assert_eq!(cqes.len(), 1);
        assert_eq!(cqes[0].opcode, WcOpcode::RdmaRead);
        let mut buf = [0u8; 8];
        a.with_hca(|h| h.mem().app_read(local.key, local.addr, &mut buf).unwrap());
        assert_eq!(&buf, b"read-far");
    }

    #[test]
    fn wait_cq_times_out_cleanly() {
        let (_net, a, _b) = pair(Duration::ZERO);
        let cq = a.with_hca(|h| h.create_cq(16));
        let start = std::time::Instant::now();
        let cqes = a.wait_cq(cq, Duration::from_millis(50));
        assert!(cqes.is_empty());
        assert!(start.elapsed() >= Duration::from_millis(45));
    }

    /// The protocol state machines themselves must be Send so they can
    /// live behind a lock shared between application threads — the
    /// thread-safety property the paper claims for the algorithm.
    #[test]
    fn protocol_state_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<HcaCore>();
        assert_send::<ThreadNode>();
        assert_send::<ThreadNet>();
    }
}
