//! # rdma-verbs — a simulated RDMA verbs substrate
//!
//! The IPDPS 2014 stream-semantics paper was evaluated on real FDR
//! InfiniBand and 10 G RoCE hardware. This crate replaces that hardware
//! with a verbs-level simulator faithful to the semantics the protocol
//! layer can observe:
//!
//! * **Memory registration** ([`mr`]) — regions with lkey/rkey, bounds
//!   and access-flag validation on every DMA.
//! * **Queue pairs** ([`qp`]) — reliable-connected semantics: in-order
//!   delivery, posted-receive matching, RESET→INIT→RTR→RTS lifecycle.
//! * **Completion queues** ([`cq`]) — polling plus event notification
//!   with verbs arm/notify rules.
//! * **Transfer operations** ([`hca`]) — SEND/RECV, RDMA WRITE,
//!   RDMA WRITE WITH IMM (the paper's "WWI"), RDMA READ, and inline
//!   sends.
//! * **Timing** ([`sim`]) — a deterministic discrete-event driver with
//!   per-WQE HCA latency, link serialization/propagation/jitter, and a
//!   single-core host CPU model ([`host`]) that prices memory copies,
//!   verbs posts and completion handling.
//! * **Profiles** ([`profiles`]) — calibrated parameter sets for the
//!   paper's FDR InfiniBand and Anue-emulated 10 G RoCE testbeds.
//! * **Threads** ([`threaded`]) — a real-thread driver over the same
//!   HCA core, used to exercise the protocol's thread safety under
//!   genuine concurrency.
//!
//! The crate's API deliberately mirrors the OFA verbs library (post_send
//! / post_recv / poll_cq, work requests with SGEs, work completions), so
//! the EXS layer above is a faithful port of what runs on real hardware.

#![warn(missing_docs)]

pub mod cm;
pub mod cq;
pub mod hca;
pub mod host;
pub mod mr;
pub mod profiles;
pub mod qp;
pub mod sim;
pub mod threaded;
pub mod types;
pub mod wire;

pub use cm::{connect_pair, connect_pair_on_cqs, connect_pool, ConnHalf};
pub use cq::CompletionQueue;
pub use hca::{Effect, HcaConfig, HcaCore, PreparedSend};
pub use host::{CpuMeter, HostModel};
pub use mr::{MemoryTable, MrInfo};
pub use profiles::HwProfile;
pub use qp::{QpCaps, QpState, QueuePair};
pub use sim::{NodeApi, NodeApp, RunOutcome, SimNet};
pub use simnet::fabric::{FabricModel, FabricStats, FairShareConfig, FlowStats};
pub use threaded::{ThreadNet, ThreadNode};
pub use types::{
    Access, CqId, Cqe, MrKey, NodeId, QpNum, RecvWr, RemoteAddr, Result, SendOpcode, SendWr, Sge,
    VerbsError, WcOpcode, WcStatus, WrId,
};
pub use wire::{WireMessage, WireOp};
