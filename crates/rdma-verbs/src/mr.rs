//! Registered memory regions and the per-node memory table.
//!
//! Each node has a flat virtual address space. Registering a region
//! allocates a page-aligned address range, pins a byte buffer behind it,
//! and returns a key usable as both lkey and rkey. All DMA performed by
//! the simulated HCA goes through [`MemoryTable::dma_write`] /
//! [`MemoryTable::dma_read`], which validate key, bounds and access flags
//! exactly as a real HCA's translation and protection table would.

use std::collections::HashMap;

use crate::types::{Access, MrKey, Result, Sge, VerbsError};

/// Alignment of region base addresses.
const PAGE: u64 = 4096;
/// Base of the simulated virtual address space (an arbitrary non-zero
/// offset so that address 0 is always invalid).
const VA_BASE: u64 = 0x1000_0000;

/// A registered memory region.
pub struct MemoryRegion {
    key: MrKey,
    base: u64,
    data: Vec<u8>,
    access: Access,
}

impl MemoryRegion {
    /// The region's key (lkey == rkey in this simulator).
    pub fn key(&self) -> MrKey {
        self.key
    }

    /// First virtual address of the region.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True for a zero-length registration.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Granted access flags.
    pub fn access(&self) -> Access {
        self.access
    }

    fn check_range(&self, addr: u64, len: u64) -> Result<usize> {
        let end = addr
            .checked_add(len)
            .ok_or(VerbsError::OutOfBounds { addr, len })?;
        if addr < self.base || end > self.base + self.data.len() as u64 {
            return Err(VerbsError::OutOfBounds { addr, len });
        }
        Ok((addr - self.base) as usize)
    }
}

/// Descriptor handed back to the application on registration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MrInfo {
    /// Region key (lkey and rkey).
    pub key: MrKey,
    /// Base virtual address.
    pub addr: u64,
    /// Region length in bytes.
    pub len: usize,
}

impl MrInfo {
    /// An SGE covering `[offset, offset+len)` of this region.
    pub fn sge(&self, offset: u64, len: u32) -> Sge {
        debug_assert!(offset as usize + len as usize <= self.len);
        Sge {
            addr: self.addr + offset,
            len,
            lkey: self.key,
        }
    }

    /// An SGE covering the whole region.
    pub fn full_sge(&self) -> Sge {
        self.sge(0, self.len as u32)
    }
}

/// The per-node registration table.
#[derive(Default)]
pub struct MemoryTable {
    regions: HashMap<u32, MemoryRegion>,
    next_key: u32,
    cursor: u64,
}

impl MemoryTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        MemoryTable {
            regions: HashMap::new(),
            next_key: 1,
            cursor: VA_BASE,
        }
    }

    /// Registers a zero-initialized region of `len` bytes.
    pub fn register(&mut self, len: usize, access: Access) -> MrInfo {
        let key = MrKey(self.next_key);
        self.next_key += 1;
        let base = self.cursor;
        let span = (len as u64).div_ceil(PAGE).max(1) * PAGE;
        self.cursor += span;
        self.regions.insert(
            key.0,
            MemoryRegion {
                key,
                base,
                data: vec![0; len],
                access,
            },
        );
        MrInfo {
            key,
            addr: base,
            len,
        }
    }

    /// Deregisters a region. Returns an error for unknown keys.
    pub fn deregister(&mut self, key: MrKey) -> Result<()> {
        self.regions
            .remove(&key.0)
            .map(|_| ())
            .ok_or(VerbsError::UnknownKey(key))
    }

    /// Number of live registrations.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// True when no regions are registered.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Length in bytes of a live registration, if `key` is known.
    pub fn len_of(&self, key: MrKey) -> Option<usize> {
        self.regions.get(&key.0).map(|r| r.data.len())
    }

    fn region(&self, key: MrKey) -> Result<&MemoryRegion> {
        self.regions.get(&key.0).ok_or(VerbsError::UnknownKey(key))
    }

    fn region_mut(&mut self, key: MrKey) -> Result<&mut MemoryRegion> {
        self.regions
            .get_mut(&key.0)
            .ok_or(VerbsError::UnknownKey(key))
    }

    /// HCA-side DMA write (placing incoming data). Requires
    /// `required_access` (e.g. [`Access::REMOTE_WRITE`] for RDMA,
    /// [`Access::LOCAL_WRITE`] for RECV placement).
    pub fn dma_write(
        &mut self,
        key: MrKey,
        addr: u64,
        data: &[u8],
        required_access: Access,
    ) -> Result<()> {
        let region = self.region_mut(key)?;
        if !region.access.contains(required_access) {
            return Err(VerbsError::AccessViolation);
        }
        let off = region.check_range(addr, data.len() as u64)?;
        region.data[off..off + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// HCA-side DMA read (gathering outgoing data).
    pub fn dma_read(
        &self,
        key: MrKey,
        addr: u64,
        len: u64,
        required_access: Access,
    ) -> Result<Vec<u8>> {
        let region = self.region(key)?;
        if !region.access.contains(required_access) {
            return Err(VerbsError::AccessViolation);
        }
        let off = region.check_range(addr, len)?;
        Ok(region.data[off..off + len as usize].to_vec())
    }

    /// Application-side write into its own registered memory (bounds
    /// checked, no access flags needed: the app owns the region).
    pub fn app_write(&mut self, key: MrKey, addr: u64, data: &[u8]) -> Result<()> {
        let region = self.region_mut(key)?;
        let off = region.check_range(addr, data.len() as u64)?;
        region.data[off..off + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Application-side read of its own registered memory.
    pub fn app_read(&self, key: MrKey, addr: u64, buf: &mut [u8]) -> Result<()> {
        let region = self.region(key)?;
        let off = region.check_range(addr, buf.len() as u64)?;
        buf.copy_from_slice(&region.data[off..off + buf.len()]);
        Ok(())
    }

    /// Copies between two registered regions on the same node (the EXS
    /// receiver's intermediate-buffer → user-buffer copy). Returns the
    /// number of bytes copied.
    pub fn local_copy(
        &mut self,
        src_key: MrKey,
        src_addr: u64,
        dst_key: MrKey,
        dst_addr: u64,
        len: u64,
    ) -> Result<u64> {
        // Read then write; regions may be the same key with
        // non-overlapping ranges.
        let data = self.dma_read(src_key, src_addr, len, Access::NONE)?;
        let region = self.region_mut(dst_key)?;
        let off = region.check_range(dst_addr, len)?;
        region.data[off..off + len as usize].copy_from_slice(&data);
        Ok(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_allocates_disjoint_aligned_ranges() {
        let mut t = MemoryTable::new();
        let a = t.register(100, Access::all());
        let b = t.register(5000, Access::all());
        let c = t.register(0, Access::all());
        assert_eq!(a.addr % PAGE, 0);
        assert_eq!(b.addr % PAGE, 0);
        assert!(b.addr >= a.addr + 100);
        assert!(c.addr >= b.addr + 5000);
        assert_ne!(a.key, b.key);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn app_write_read_roundtrip() {
        let mut t = MemoryTable::new();
        let mr = t.register(64, Access::NONE);
        t.app_write(mr.key, mr.addr + 8, b"hello").unwrap();
        let mut buf = [0u8; 5];
        t.app_read(mr.key, mr.addr + 8, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn bounds_are_enforced() {
        let mut t = MemoryTable::new();
        let mr = t.register(16, Access::all());
        assert!(matches!(
            t.app_write(mr.key, mr.addr + 10, &[0; 7]),
            Err(VerbsError::OutOfBounds { .. })
        ));
        assert!(matches!(
            t.app_write(mr.key, mr.addr - 1, &[0; 1]),
            Err(VerbsError::OutOfBounds { .. })
        ));
        // Exactly at the end is fine.
        t.app_write(mr.key, mr.addr + 15, &[9]).unwrap();
        // Overflow-safe end computation.
        assert!(matches!(
            t.dma_read(mr.key, u64::MAX, 2, Access::NONE),
            Err(VerbsError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn unknown_key_is_rejected() {
        let mut t = MemoryTable::new();
        assert_eq!(
            t.app_write(MrKey(42), 0, &[0]),
            Err(VerbsError::UnknownKey(MrKey(42)))
        );
        assert_eq!(
            t.deregister(MrKey(42)),
            Err(VerbsError::UnknownKey(MrKey(42)))
        );
    }

    #[test]
    fn access_flags_gate_dma() {
        let mut t = MemoryTable::new();
        let ro = t.register(32, Access::REMOTE_READ);
        // Remote write against a read-only region fails.
        assert_eq!(
            t.dma_write(ro.key, ro.addr, &[1, 2], Access::REMOTE_WRITE),
            Err(VerbsError::AccessViolation)
        );
        // Remote read is allowed.
        assert!(t.dma_read(ro.key, ro.addr, 2, Access::REMOTE_READ).is_ok());
        let wo = t.register(32, Access::local_remote_write());
        assert!(t
            .dma_write(wo.key, wo.addr, &[1, 2], Access::REMOTE_WRITE)
            .is_ok());
        // Remote read without permission fails.
        assert_eq!(
            t.dma_read(wo.key, wo.addr, 2, Access::REMOTE_READ),
            Err(VerbsError::AccessViolation)
        );
    }

    #[test]
    fn deregister_invalidates_key() {
        let mut t = MemoryTable::new();
        let mr = t.register(8, Access::all());
        t.deregister(mr.key).unwrap();
        assert_eq!(
            t.app_read(mr.key, mr.addr, &mut [0u8; 1]),
            Err(VerbsError::UnknownKey(mr.key))
        );
        assert!(t.is_empty());
    }

    #[test]
    fn local_copy_moves_bytes() {
        let mut t = MemoryTable::new();
        let src = t.register(32, Access::all());
        let dst = t.register(32, Access::all());
        t.app_write(src.key, src.addr, b"stream-bytes").unwrap();
        let n = t
            .local_copy(src.key, src.addr, dst.key, dst.addr + 4, 12)
            .unwrap();
        assert_eq!(n, 12);
        let mut buf = [0u8; 12];
        t.app_read(dst.key, dst.addr + 4, &mut buf).unwrap();
        assert_eq!(&buf, b"stream-bytes");
    }

    #[test]
    fn sge_helpers() {
        let mut t = MemoryTable::new();
        let mr = t.register(128, Access::all());
        let s = mr.sge(16, 32);
        assert_eq!(s.addr, mr.addr + 16);
        assert_eq!(s.len, 32);
        assert_eq!(s.lkey, mr.key);
        let f = mr.full_sge();
        assert_eq!(f.addr, mr.addr);
        assert_eq!(f.len, 128);
    }
}
