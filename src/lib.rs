//! # rdma-stream — stream semantics over (simulated) RDMA
//!
//! Facade crate for the reproduction of MacArthur & Russell, *An Efficient
//! Method for Stream Semantics over RDMA* (IEEE IPDPS 2014). It re-exports
//! the workspace crates so examples and downstream users need a single
//! dependency:
//!
//! * [`simnet`] — deterministic discrete-event network simulation engine.
//! * [`verbs`] (crate `rdma-verbs`) — simulated RDMA verbs substrate:
//!   memory regions, queue pairs, completion queues, SEND/RECV,
//!   RDMA WRITE (WITH IMM), RDMA READ, connection management, and the host
//!   CPU cost model.
//! * [`exs`] — the paper's contribution: a byte-stream protocol that
//!   dynamically switches between zero-copy *direct* transfers into
//!   advertised user buffers and buffered *indirect* transfers through a
//!   hidden circular intermediate buffer.
//! * [`blast`] — the measurement workload tool used throughout the paper's
//!   evaluation, with distributions, metrics and multi-seed statistics.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the architecture
//! and the per-figure experiment index.

#![warn(missing_docs)]

pub use blast;
pub use exs;
pub use rdma_verbs as verbs;
pub use simnet;
